package catree

import (
	"cmp"
	"math/rand/v2"
	"sort"
)

// container is the per-leaf ordered collection. Mutable containers (AVL,
// skip list) return themselves from put/remove; the immutable container
// returns a fresh copy (the CA-imm variant of Sagonas & Winblad).
// Containers are accessed only under the owning leaf's lock.
type container[K cmp.Ordered, V any] interface {
	get(key K) (V, bool)
	put(key K, val V) container[K, V]
	remove(key K) (container[K, V], bool)
	size() int
	// split halves the container; mid is the smallest key of the right
	// half. size() must be >= 2.
	split() (left, right container[K, V], mid K)
	// join merges other (all keys strictly greater) into a container.
	join(other container[K, V]) container[K, V]
	// ascend visits entries with key >= lo in order until fn is false.
	ascend(lo K, fn func(K, V) bool) bool
	// entries returns all entries in ascending order (fresh slices).
	entries() ([]K, []V)
}

// ---------------------------------------------------------------- AVL ----

// avlNode is a node of the mutable AVL container (CA-AVL).
type avlNode[K cmp.Ordered, V any] struct {
	key         K
	val         V
	left, right *avlNode[K, V]
	height      int
}

type avlContainer[K cmp.Ordered, V any] struct {
	root *avlNode[K, V]
	n    int
}

func newAVL[K cmp.Ordered, V any]() *avlContainer[K, V] { return &avlContainer[K, V]{} }

func h[K cmp.Ordered, V any](n *avlNode[K, V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[K cmp.Ordered, V any](n *avlNode[K, V]) *avlNode[K, V] {
	n.height = 1 + max(h(n.left), h(n.right))
	bf := h(n.left) - h(n.right)
	switch {
	case bf > 1:
		if h(n.left.left) < h(n.left.right) {
			n.left = rotL(n.left)
		}
		return rotR(n)
	case bf < -1:
		if h(n.right.right) < h(n.right.left) {
			n.right = rotR(n.right)
		}
		return rotL(n)
	}
	return n
}

func rotL[K cmp.Ordered, V any](n *avlNode[K, V]) *avlNode[K, V] {
	r := n.right
	n.right = r.left
	r.left = n
	n.height = 1 + max(h(n.left), h(n.right))
	r.height = 1 + max(h(r.left), h(r.right))
	return r
}

func rotR[K cmp.Ordered, V any](n *avlNode[K, V]) *avlNode[K, V] {
	l := n.left
	n.left = l.right
	l.right = n
	n.height = 1 + max(h(n.left), h(n.right))
	l.height = 1 + max(h(l.left), h(l.right))
	return l
}

func (c *avlContainer[K, V]) get(key K) (V, bool) {
	n := c.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

func (c *avlContainer[K, V]) put(key K, val V) container[K, V] {
	var ins func(n *avlNode[K, V]) *avlNode[K, V]
	added := false
	ins = func(n *avlNode[K, V]) *avlNode[K, V] {
		if n == nil {
			added = true
			return &avlNode[K, V]{key: key, val: val, height: 1}
		}
		switch {
		case key < n.key:
			n.left = ins(n.left)
		case key > n.key:
			n.right = ins(n.right)
		default:
			n.val = val
			return n
		}
		return fix(n)
	}
	c.root = ins(c.root)
	if added {
		c.n++
	}
	return c
}

func (c *avlContainer[K, V]) remove(key K) (container[K, V], bool) {
	removed := false
	var del func(n *avlNode[K, V], key K) *avlNode[K, V]
	del = func(n *avlNode[K, V], key K) *avlNode[K, V] {
		if n == nil {
			return nil
		}
		switch {
		case key < n.key:
			n.left = del(n.left, key)
		case key > n.key:
			n.right = del(n.right, key)
		default:
			removed = true
			if n.left == nil {
				return n.right
			}
			if n.right == nil {
				return n.left
			}
			// Replace with the in-order successor.
			s := n.right
			for s.left != nil {
				s = s.left
			}
			n.key, n.val = s.key, s.val
			n.right = delMin(n.right)
		}
		return fix(n)
	}
	c.root = del(c.root, key)
	if removed {
		c.n--
	}
	return c, removed
}

// delMin removes the minimum node (whose key/val were already copied up).
func delMin[K cmp.Ordered, V any](n *avlNode[K, V]) *avlNode[K, V] {
	if n.left == nil {
		return n.right
	}
	n.left = delMin(n.left)
	return fix(n)
}

func (c *avlContainer[K, V]) size() int { return c.n }

func (c *avlContainer[K, V]) entries() ([]K, []V) {
	keys := make([]K, 0, c.n)
	vals := make([]V, 0, c.n)
	var walk func(n *avlNode[K, V])
	walk = func(n *avlNode[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		keys = append(keys, n.key)
		vals = append(vals, n.val)
		walk(n.right)
	}
	walk(c.root)
	return keys, vals
}

func (c *avlContainer[K, V]) split() (container[K, V], container[K, V], K) {
	keys, vals := c.entries()
	mid := len(keys) / 2
	return avlFromSorted(keys[:mid], vals[:mid]), avlFromSorted(keys[mid:], vals[mid:]), keys[mid]
}

func (c *avlContainer[K, V]) join(other container[K, V]) container[K, V] {
	ok, ov := other.entries()
	k, v := c.entries()
	return avlFromSorted(append(k, ok...), append(v, ov...))
}

func (c *avlContainer[K, V]) ascend(lo K, fn func(K, V) bool) bool {
	cont := true
	var walk func(n *avlNode[K, V])
	walk = func(n *avlNode[K, V]) {
		if n == nil || !cont {
			return
		}
		if n.key >= lo {
			walk(n.left)
			if !cont {
				return
			}
			if !fn(n.key, n.val) {
				cont = false
				return
			}
		}
		walk(n.right)
	}
	walk(c.root)
	return cont
}

func avlFromSorted[K cmp.Ordered, V any](keys []K, vals []V) *avlContainer[K, V] {
	var build func(lo, hi int) *avlNode[K, V]
	build = func(lo, hi int) *avlNode[K, V] {
		if lo >= hi {
			return nil
		}
		mid := (lo + hi) / 2
		n := &avlNode[K, V]{key: keys[mid], val: vals[mid]}
		n.left = build(lo, mid)
		n.right = build(mid+1, hi)
		n.height = 1 + max(h(n.left), h(n.right))
		return n
	}
	return &avlContainer[K, V]{root: build(0, len(keys)), n: len(keys)}
}

// ----------------------------------------------------------- skip list ----

// slContainer is a single-threaded skip list container (CA-SL). It is only
// touched under the leaf lock, so it needs no internal synchronization.
type slContainer[K cmp.Ordered, V any] struct {
	head *slNode[K, V] // sentinel with full-height tower
	n    int
	rng  *rand.PCG
}

type slNode[K cmp.Ordered, V any] struct {
	key  K
	val  V
	next []*slNode[K, V]
}

const slMaxLevel = 12

func newSL[K cmp.Ordered, V any]() *slContainer[K, V] {
	c := &slContainer[K, V]{head: &slNode[K, V]{next: make([]*slNode[K, V], slMaxLevel)}}
	c.rng = rand.NewPCG(0x5eed, 0xca7)
	return c
}

func (c *slContainer[K, V]) randLevel() int {
	lvl := 1
	for lvl < slMaxLevel && c.rng.Uint64()&1 == 0 {
		lvl++
	}
	return lvl
}

func (c *slContainer[K, V]) findPreds(key K, preds []*slNode[K, V]) *slNode[K, V] {
	x := c.head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		preds[i] = x
	}
	return x.next[0]
}

func (c *slContainer[K, V]) get(key K) (V, bool) {
	x := c.head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && n.key == key {
		return n.val, true
	}
	var zero V
	return zero, false
}

func (c *slContainer[K, V]) put(key K, val V) container[K, V] {
	var preds [slMaxLevel]*slNode[K, V]
	n := c.findPreds(key, preds[:])
	if n != nil && n.key == key {
		n.val = val
		return c
	}
	lvl := c.randLevel()
	nn := &slNode[K, V]{key: key, val: val, next: make([]*slNode[K, V], lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = preds[i].next[i]
		preds[i].next[i] = nn
	}
	c.n++
	return c
}

func (c *slContainer[K, V]) remove(key K) (container[K, V], bool) {
	var preds [slMaxLevel]*slNode[K, V]
	n := c.findPreds(key, preds[:])
	if n == nil || n.key != key {
		return c, false
	}
	for i := 0; i < len(n.next); i++ {
		if preds[i].next[i] == n {
			preds[i].next[i] = n.next[i]
		}
	}
	c.n--
	return c, true
}

func (c *slContainer[K, V]) size() int { return c.n }

func (c *slContainer[K, V]) entries() ([]K, []V) {
	keys := make([]K, 0, c.n)
	vals := make([]V, 0, c.n)
	for x := c.head.next[0]; x != nil; x = x.next[0] {
		keys = append(keys, x.key)
		vals = append(vals, x.val)
	}
	return keys, vals
}

func slFromSorted[K cmp.Ordered, V any](keys []K, vals []V) *slContainer[K, V] {
	c := newSL[K, V]()
	// Insert in reverse so each insert is O(level) at the front.
	for i := len(keys) - 1; i >= 0; i-- {
		c.put(keys[i], vals[i])
	}
	return c
}

func (c *slContainer[K, V]) split() (container[K, V], container[K, V], K) {
	keys, vals := c.entries()
	mid := len(keys) / 2
	return slFromSorted(keys[:mid], vals[:mid]), slFromSorted(keys[mid:], vals[mid:]), keys[mid]
}

func (c *slContainer[K, V]) join(other container[K, V]) container[K, V] {
	ok, ov := other.entries()
	k, v := c.entries()
	return slFromSorted(append(k, ok...), append(v, ov...))
}

func (c *slContainer[K, V]) ascend(lo K, fn func(K, V) bool) bool {
	x := c.head
	for i := slMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < lo {
			x = x.next[i]
		}
	}
	for n := x.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key, n.val) {
			return false
		}
	}
	return true
}

// ----------------------------------------------------------- immutable ----

// immContainer is an immutable sorted-array container (CA-imm / LFCA): put
// and remove return fresh copies, similar to a Jiffy revision without the
// hash index.
type immContainer[K cmp.Ordered, V any] struct {
	keys []K
	vals []V
}

func newImm[K cmp.Ordered, V any]() *immContainer[K, V] { return &immContainer[K, V]{} }

func (c *immContainer[K, V]) find(key K) (int, bool) {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= key })
	return i, i < len(c.keys) && c.keys[i] == key
}

func (c *immContainer[K, V]) get(key K) (V, bool) {
	if i, ok := c.find(key); ok {
		return c.vals[i], true
	}
	var zero V
	return zero, false
}

func (c *immContainer[K, V]) put(key K, val V) container[K, V] {
	i, found := c.find(key)
	if found {
		keys := append([]K(nil), c.keys...)
		vals := append([]V(nil), c.vals...)
		vals[i] = val
		return &immContainer[K, V]{keys, vals}
	}
	keys := make([]K, len(c.keys)+1)
	vals := make([]V, len(c.vals)+1)
	copy(keys, c.keys[:i])
	copy(vals, c.vals[:i])
	keys[i], vals[i] = key, val
	copy(keys[i+1:], c.keys[i:])
	copy(vals[i+1:], c.vals[i:])
	return &immContainer[K, V]{keys, vals}
}

func (c *immContainer[K, V]) remove(key K) (container[K, V], bool) {
	i, found := c.find(key)
	if !found {
		return c, false
	}
	keys := make([]K, len(c.keys)-1)
	vals := make([]V, len(c.vals)-1)
	copy(keys, c.keys[:i])
	copy(vals, c.vals[:i])
	copy(keys[i:], c.keys[i+1:])
	copy(vals[i:], c.vals[i+1:])
	return &immContainer[K, V]{keys, vals}, true
}

func (c *immContainer[K, V]) size() int { return len(c.keys) }

func (c *immContainer[K, V]) entries() ([]K, []V) {
	return append([]K(nil), c.keys...), append([]V(nil), c.vals...)
}

func (c *immContainer[K, V]) split() (container[K, V], container[K, V], K) {
	mid := len(c.keys) / 2
	l := &immContainer[K, V]{c.keys[:mid:mid], c.vals[:mid:mid]}
	r := &immContainer[K, V]{c.keys[mid:], c.vals[mid:]}
	return l, r, c.keys[mid]
}

func (c *immContainer[K, V]) join(other container[K, V]) container[K, V] {
	ok, ov := other.entries()
	keys := make([]K, 0, len(c.keys)+len(ok))
	vals := make([]V, 0, len(c.vals)+len(ov))
	keys = append(append(keys, c.keys...), ok...)
	vals = append(append(vals, c.vals...), ov...)
	return &immContainer[K, V]{keys, vals}
}

func (c *immContainer[K, V]) ascend(lo K, fn func(K, V) bool) bool {
	i := sort.Search(len(c.keys), func(i int) bool { return c.keys[i] >= lo })
	for ; i < len(c.keys); i++ {
		if !fn(c.keys[i], c.vals[i]) {
			return false
		}
	}
	return true
}
