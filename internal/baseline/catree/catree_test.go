package catree

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/index"
)

var variants = map[string]Variant{"avl": AVL, "sl": SL, "imm": Imm}

func TestContainersAgainstReference(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, 2))
				tr := New[uint64, int](v)
				var c container[uint64, int] = tr.emptyContainer()
				ref := map[uint64]int{}
				for i := 0; i < 500; i++ {
					k := uint64(rng.IntN(64))
					switch rng.IntN(3) {
					case 0:
						var removed bool
						c, removed = c.remove(k)
						if _, want := ref[k]; removed != want {
							return false
						}
						delete(ref, k)
					case 1:
						c = c.put(k, i)
						ref[k] = i
					default:
						got, ok := c.get(k)
						want, wantOK := ref[k]
						if ok != wantOK || (ok && got != want) {
							return false
						}
					}
				}
				if c.size() != len(ref) {
					return false
				}
				keys, vals := c.entries()
				for i, k := range keys {
					if i > 0 && keys[i-1] >= k {
						return false
					}
					if ref[k] != vals[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestContainerSplitJoin(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			tr := New[uint64, int](v)
			var c container[uint64, int] = tr.emptyContainer()
			for i := 0; i < 100; i++ {
				c = c.put(uint64(i), i)
			}
			l, r, mid := c.split()
			if l.size()+r.size() != 100 {
				t.Fatalf("split sizes %d+%d", l.size(), r.size())
			}
			lk, _ := l.entries()
			rk, _ := r.entries()
			if lk[len(lk)-1] >= mid || rk[0] != mid {
				t.Fatalf("split boundary: %d | mid %d | %d", lk[len(lk)-1], mid, rk[0])
			}
			j := l.join(r)
			if j.size() != 100 {
				t.Fatalf("join size %d", j.size())
			}
			for i := 0; i < 100; i++ {
				if got, ok := j.get(uint64(i)); !ok || got != i {
					t.Fatalf("joined get(%d) = %d,%v", i, got, ok)
				}
			}
		})
	}
}

func TestContainerAscendEarlyStop(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			tr := New[uint64, int](v)
			var c container[uint64, int] = tr.emptyContainer()
			for i := 0; i < 50; i++ {
				c = c.put(uint64(i*2), i)
			}
			var got []uint64
			c.ascend(11, func(k uint64, _ int) bool {
				got = append(got, k)
				return len(got) < 5
			})
			if len(got) != 5 || got[0] != 12 {
				t.Fatalf("ascend: %v", got)
			}
		})
	}
}

func TestTreeSequentialReference(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, 9))
				tr := New[uint64, int](v)
				ref := map[uint64]int{}
				for i := 0; i < 600; i++ {
					k := uint64(rng.IntN(128))
					switch rng.IntN(3) {
					case 0:
						got := tr.Remove(k)
						_, want := ref[k]
						if got != want {
							return false
						}
						delete(ref, k)
					case 1:
						tr.Put(k, i)
						ref[k] = i
					default:
						got, ok := tr.Get(k)
						want, wantOK := ref[k]
						if ok != wantOK || (ok && got != want) {
							return false
						}
					}
				}
				return tr.Len() == len(ref)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// forceSplits pushes the contention statistic up artificially by hammering
// from several goroutines so the tree actually fans out.
func TestTreeAdaptsUnderContention(t *testing.T) {
	tr := New[uint64, int](AVL)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 11))
			for i := 0; i < 5000; i++ {
				tr.Put(uint64(rng.IntN(10000)), i)
			}
		}()
	}
	wg.Wait()
	// Count leaves: a tree that never split has exactly one.
	leaves := 0
	var walk func(n *ctNode[uint64, int])
	walk = func(n *ctNode[uint64, int]) {
		if n == nil {
			return
		}
		if !n.route {
			leaves++
			return
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(tr.root.Load())
	if leaves < 2 {
		t.Logf("warning: no splits happened (leaves=%d); contention too low on this host", leaves)
	}
	for k := uint64(0); k < 10000; k++ {
		tr.Get(k) // must not deadlock or crash
	}
}

func TestTreeBatchUpdateAtomicSequential(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			tr := New[uint64, int](v)
			for i := 0; i < 200; i++ {
				tr.Put(uint64(i), -1)
			}
			var ops []index.BatchOp[uint64, int]
			for i := 0; i < 200; i += 4 {
				ops = append(ops, index.BatchOp[uint64, int]{Key: uint64(i), Val: i})
			}
			ops = append(ops, index.BatchOp[uint64, int]{Key: 3, Remove: true})
			tr.BatchUpdate(ops)
			if _, ok := tr.Get(3); ok {
				t.Fatal("batched remove ignored")
			}
			for i := 0; i < 200; i += 4 {
				if got, _ := tr.Get(uint64(i)); got != i {
					t.Fatalf("Get(%d) = %d", i, got)
				}
			}
		})
	}
}

func TestTreeBatchAtomicityConcurrent(t *testing.T) {
	tr := New[uint64, int](AVL)
	keys := []uint64{10, 2000, 4000, 6000, 8000}
	for i := 0; i < 10000; i += 7 {
		tr.Put(uint64(i), -1)
	}
	for _, k := range keys {
		tr.Put(k, -1)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := g; ; st += 3 {
				select {
				case <-stop:
					return
				default:
				}
				ops := make([]index.BatchOp[uint64, int], len(keys))
				for i, k := range keys {
					ops[i] = index.BatchOp[uint64, int]{Key: k, Val: st}
				}
				tr.BatchUpdate(ops)
			}
		}()
	}
	for round := 0; round < 200; round++ {
		var got []int
		tr.RangeFrom(0, func(k uint64, v int) bool {
			for _, bk := range keys {
				if k == bk {
					got = append(got, v)
				}
			}
			return k <= keys[len(keys)-1]
		})
		if len(got) != len(keys) {
			close(stop)
			wg.Wait()
			t.Fatalf("scan saw %d/%d batch keys", len(got), len(keys))
		}
		for _, v := range got[1:] {
			if v != got[0] {
				close(stop)
				wg.Wait()
				t.Fatalf("torn batch: %v", got)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTreeConcurrentShardedReference(t *testing.T) {
	for name, v := range variants {
		v := v
		t.Run(name, func(t *testing.T) {
			tr := New[uint64, int](v)
			const goroutines, ops, space = 8, 1500, 256
			type final struct {
				val     int
				present bool
			}
			finals := make([]final, space)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(uint64(g), 17))
					for i := 0; i < ops; i++ {
						k := uint64(rng.IntN(space/goroutines))*goroutines + uint64(g)
						switch rng.IntN(4) {
						case 0:
							tr.Remove(k)
							finals[k] = final{}
						case 1:
							tr.Get(k)
						default:
							val := g*ops + i
							tr.Put(k, val)
							finals[k] = final{val, true}
						}
					}
				}()
			}
			wg.Wait()
			for k, want := range finals {
				got, ok := tr.Get(uint64(k))
				if ok != want.present || (ok && got != want.val) {
					t.Fatalf("key %d: %d,%v want %d,%v", k, got, ok, want.val, want.present)
				}
			}
		})
	}
}

func TestTreeScanSortedUnderChurn(t *testing.T) {
	tr := New[uint64, int](Imm)
	for i := 0; i < 1000; i++ {
		tr.Put(uint64(i), i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewPCG(1, 19))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Put(uint64(rng.IntN(1000)), i)
		}
	}()
	for round := 0; round < 100; round++ {
		var prev uint64
		n := 0
		tr.RangeFrom(0, func(k uint64, _ int) bool {
			if n > 0 && k <= prev {
				t.Errorf("scan unsorted: %d after %d", k, prev)
				return false
			}
			prev = k
			n++
			return true
		})
		if n != 1000 {
			close(stop)
			wg.Wait()
			t.Fatalf("scan saw %d/1000 stable keys", n)
		}
	}
	close(stop)
	wg.Wait()
}
