// Package catree implements the contention-adapting (CA) search trees of
// Sagonas & Winblad used as baselines in the paper's evaluation (§4.1):
// CA-AVL and CA-SL (lock-based CA trees with mutable AVL / skip-list
// containers, the only competitors that also support linearizable batch
// updates) and CA-imm (immutable sorted-array containers).
//
// Structure: immutable routing nodes direct a key to a leaf (base node)
// holding a lock, a contention statistic and a container of entries. A leaf
// whose lock is frequently contended splits into two leaves under a new
// route; an uncontended leaf joins with its sibling. This is exactly the
// adaptation mechanism the paper contrasts with Jiffy's time-based policy
// (§3.3.6): here granularity follows lock contention, not the read/update
// time ratio.
//
// Batch updates and range scans lock every involved leaf in ascending key
// order (scans use hand-over-hand coupling), which makes them linearizable
// — and is precisely the lock-based behaviour whose collapse under large
// random batches Figure 5/6 demonstrate.
package catree

import (
	"cmp"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Variant selects the leaf container implementation.
type Variant int

const (
	AVL Variant = iota // CA-AVL: mutable AVL container
	SL                 // CA-SL: mutable skip-list container
	Imm                // CA-imm: immutable sorted-array container
)

// Contention-statistic tuning, following the constants in Sagonas &
// Winblad's implementations: contended lock acquisitions push a leaf
// towards splitting, uncontended ones towards joining.
const (
	statContended   = 250
	statUncontended = -1
	statSplitAt     = 1000
	statJoinAt      = -1000

	// maxLeafSize bounds a leaf regardless of contention: without it a
	// contention-free phase (e.g. single-threaded loading) leaves one
	// giant container whose lock hold times degrade everything that
	// follows. Immutable containers are bounded much tighter because
	// every update copies the whole container — in the published CA-imm,
	// contention keeps them at tens-to-hundreds of entries, an
	// equilibrium a low-core-count host never reaches on its own.
	maxLeafSize    = 1024
	maxLeafSizeImm = 128
)

// ctNode is either a routing node (route == true) or a leaf. Routes are
// immutable except for their child pointers and their validity (cleared
// under mu when a join removes them).
type ctNode[K cmp.Ordered, V any] struct {
	route bool

	// Route fields.
	key         K
	left, right atomic.Pointer[ctNode[K, V]]

	// Shared by routes and leaves: mu guards stat, valid and cont on
	// leaves, and valid on routes during joins.
	mu    sync.Mutex
	stat  int
	valid bool
	cont  container[K, V]
}

// Tree is a contention-adapting search tree.
type Tree[K cmp.Ordered, V any] struct {
	root    atomic.Pointer[ctNode[K, V]]
	variant Variant
}

// New returns an empty CA tree of the given variant.
func New[K cmp.Ordered, V any](variant Variant) *Tree[K, V] {
	t := &Tree[K, V]{variant: variant}
	t.root.Store(t.newLeaf(t.emptyContainer()))
	return t
}

// Name implements index.Named.
func (t *Tree[K, V]) Name() string {
	switch t.variant {
	case AVL:
		return "ca-avl"
	case SL:
		return "ca-sl"
	default:
		return "ca-imm"
	}
}

func (t *Tree[K, V]) emptyContainer() container[K, V] {
	switch t.variant {
	case AVL:
		return newAVL[K, V]()
	case SL:
		return newSL[K, V]()
	default:
		return newImm[K, V]()
	}
}

func (t *Tree[K, V]) fromSorted(keys []K, vals []V) container[K, V] {
	switch t.variant {
	case AVL:
		return avlFromSorted(keys, vals)
	case SL:
		return slFromSorted(keys, vals)
	default:
		return &immContainer[K, V]{keys, vals}
	}
}

func (t *Tree[K, V]) newLeaf(c container[K, V]) *ctNode[K, V] {
	return &ctNode[K, V]{valid: true, cont: c}
}

// traverse walks to the leaf responsible for key, returning the leaf, its
// parent and grandparent routes (nil at the top), and the leaf's exclusive
// upper bound (nil for the rightmost leaf), needed by scans and batches.
func (t *Tree[K, V]) traverse(key K) (gp, p, leaf *ctNode[K, V], upper *K) {
	cur := t.root.Load()
	for cur.route {
		gp = p
		p = cur
		if key < cur.key {
			k := cur.key
			upper = &k
			cur = cur.left.Load()
		} else {
			cur = cur.right.Load()
		}
	}
	return gp, p, cur, upper
}

// lockLeaf acquires the leaf lock, recording contention in the statistic.
// Returns false if the leaf was invalidated before we got it.
func lockLeaf[K cmp.Ordered, V any](leaf *ctNode[K, V]) bool {
	if leaf.mu.TryLock() {
		leaf.stat += statUncontended
	} else {
		leaf.mu.Lock()
		leaf.stat += statContended
	}
	if !leaf.valid {
		leaf.mu.Unlock()
		return false
	}
	return true
}

// Get returns the value stored for key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	for {
		_, _, leaf, _ := t.traverse(key)
		if !lockLeaf(leaf) {
			continue
		}
		v, ok := leaf.cont.get(key)
		leaf.mu.Unlock()
		return v, ok
	}
}

// Put sets the value for key.
func (t *Tree[K, V]) Put(key K, val V) {
	for {
		gp, p, leaf, _ := t.traverse(key)
		if !lockLeaf(leaf) {
			continue
		}
		leaf.cont = leaf.cont.put(key, val)
		t.adapt(gp, p, leaf)
		leaf.mu.Unlock()
		return
	}
}

// Remove deletes key, reporting whether it was present.
func (t *Tree[K, V]) Remove(key K) bool {
	for {
		gp, p, leaf, _ := t.traverse(key)
		if !lockLeaf(leaf) {
			continue
		}
		c, removed := leaf.cont.remove(key)
		leaf.cont = c
		t.adapt(gp, p, leaf)
		leaf.mu.Unlock()
		return removed
	}
}

// adapt performs a split or join if the contention statistic crossed a
// threshold. Called with leaf locked; may invalidate it.
func (t *Tree[K, V]) adapt(gp, p, leaf *ctNode[K, V]) {
	cap := maxLeafSize
	if t.variant == Imm {
		cap = maxLeafSizeImm
	}
	switch {
	case (leaf.stat > statSplitAt || leaf.cont.size() > cap) && leaf.cont.size() >= 2:
		t.splitLeaf(p, leaf)
	case leaf.stat < statJoinAt || leaf.cont.size() == 0:
		t.joinLeaf(gp, p, leaf)
	}
}

// splitLeaf replaces leaf with route{left, right}. Called with leaf locked.
func (t *Tree[K, V]) splitLeaf(p, leaf *ctNode[K, V]) {
	lc, rc, mid := leaf.cont.split()
	route := &ctNode[K, V]{route: true, key: mid, valid: true}
	route.left.Store(t.newLeaf(lc))
	route.right.Store(t.newLeaf(rc))
	if t.replaceChild(p, leaf, route) {
		leaf.valid = false
	} else {
		leaf.stat = 0 // structure moved under us; reset and carry on
	}
}

// joinLeaf merges leaf with its sibling when both are leaves, removing the
// parent route. Called with leaf locked; all additional locks are TryLocks
// so the ascending-order locking discipline of scans and batches cannot
// deadlock against joins.
func (t *Tree[K, V]) joinLeaf(gp, p, leaf *ctNode[K, V]) {
	leaf.stat = 0
	if p == nil {
		return // root leaf: nothing to join with
	}
	if !p.mu.TryLock() {
		return
	}
	defer p.mu.Unlock()
	if !p.valid {
		return
	}
	var sib *ctNode[K, V]
	leafIsLeft := p.left.Load() == leaf
	if leafIsLeft {
		sib = p.right.Load()
	} else {
		sib = p.left.Load()
	}
	if sib == nil || sib.route || sib == leaf {
		return
	}
	if !sib.mu.TryLock() {
		return
	}
	defer sib.mu.Unlock()
	if !sib.valid {
		return
	}
	var merged container[K, V]
	if leafIsLeft {
		merged = leaf.cont.join(sib.cont)
	} else {
		merged = sib.cont.join(leaf.cont)
	}
	nl := t.newLeaf(merged)
	if gp == nil {
		if !t.root.CompareAndSwap(p, nl) {
			return
		}
	} else {
		if !gp.mu.TryLock() {
			return
		}
		defer gp.mu.Unlock()
		if !gp.valid || !t.replaceChild(gp, p, nl) {
			return
		}
	}
	p.valid = false
	leaf.valid = false
	sib.valid = false
}

// replaceChild swaps old for new under parent (or the root). Returns false
// if the slot no longer holds old.
func (t *Tree[K, V]) replaceChild(p, old, nu *ctNode[K, V]) bool {
	if p == nil {
		return t.root.CompareAndSwap(old, nu)
	}
	if p.left.Load() == old {
		return p.left.CompareAndSwap(old, nu)
	}
	if p.right.Load() == old {
		return p.right.CompareAndSwap(old, nu)
	}
	return false
}

// RangeFrom visits entries with key >= lo ascending until fn returns false,
// using hand-over-hand leaf locking: the next leaf's lock is taken before
// the current one is released, which linearizes the scan against
// single-leaf updates and whole-batch updates.
func (t *Tree[K, V]) RangeFrom(lo K, fn func(key K, val V) bool) {
	cursor := lo
	var held *ctNode[K, V]
	defer func() {
		if held != nil {
			held.mu.Unlock()
		}
	}()
	for {
		_, _, leaf, upper := t.traverse(cursor)
		if leaf == held {
			// Rightmost leaf reached twice: done.
			return
		}
		if !lockLeaf(leaf) {
			continue
		}
		if held != nil {
			held.mu.Unlock()
		}
		held = leaf
		if !leaf.cont.ascend(cursor, fn) {
			return
		}
		if upper == nil {
			return // rightmost leaf
		}
		cursor = *upper
	}
}

// BatchUpdate applies ops atomically (CA-AVL and CA-SL support this; we
// provide it for every variant). All involved leaves are locked in
// ascending key order before any mutation, then mutated, then released —
// the textbook lock-based approach whose cost under random batches the
// paper measures.
func (t *Tree[K, V]) BatchUpdate(ops []index.BatchOp[K, V]) {
	if len(ops) == 0 {
		return
	}
	sorted := make([]index.BatchOp[K, V], len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

retry:
	for {
		type lockedRun struct {
			leaf     *ctNode[K, V]
			gp, p    *ctNode[K, V]
			from, to int // ops[from:to] belong to this leaf
		}
		var locked []lockedRun
		unlockAll := func() {
			for _, lr := range locked {
				lr.leaf.mu.Unlock()
			}
		}
		i := 0
		for i < len(sorted) {
			gp, p, leaf, upper := t.traverse(sorted[i].Key)
			if !lockLeaf(leaf) {
				unlockAll()
				continue retry
			}
			j := i + 1
			for j < len(sorted) && (upper == nil || sorted[j].Key < *upper) {
				j++
			}
			locked = append(locked, lockedRun{leaf: leaf, gp: gp, p: p, from: i, to: j})
			i = j
		}
		// All locks held: apply every run, then adapt and release.
		for _, lr := range locked {
			for _, op := range sorted[lr.from:lr.to] {
				if op.Remove {
					c, _ := lr.leaf.cont.remove(op.Key)
					lr.leaf.cont = c
				} else {
					lr.leaf.cont = lr.leaf.cont.put(op.Key, op.Val)
				}
			}
		}
		for _, lr := range locked {
			t.adapt(lr.gp, lr.p, lr.leaf)
			lr.leaf.mu.Unlock()
		}
		return
	}
}

// Len counts entries (O(n); for tests).
func (t *Tree[K, V]) Len() int {
	n := 0
	var min K
	t.RangeFrom(min, func(K, V) bool { n++; return true })
	return n
}
