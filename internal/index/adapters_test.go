package index

import (
	"testing"
)

func TestJiffyAdapterRoundTrip(t *testing.T) {
	j := NewJiffy[uint64, string]()
	if j.Name() != "jiffy" {
		t.Fatalf("name = %q", j.Name())
	}
	j.Put(1, "a")
	j.Put(2, "b")
	if v, ok := j.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if !j.Remove(1) || j.Remove(1) {
		t.Fatal("remove semantics")
	}
	j.BatchUpdate([]BatchOp[uint64, string]{
		{Key: 3, Val: "c"},
		{Key: 2, Remove: true},
	})
	if _, ok := j.Get(2); ok {
		t.Fatal("batched remove ignored")
	}
	if v, _ := j.Get(3); v != "c" {
		t.Fatalf("batched put: %q", v)
	}
	var keys []uint64
	j.RangeFrom(0, func(k uint64, _ string) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("scan: %v", keys)
	}
}

func TestKiwiAdapterRoundTrip(t *testing.T) {
	k := NewKiwi()
	if k.Name() != "kiwi" {
		t.Fatalf("name = %q", k.Name())
	}
	k.Put(7, 70)
	if v, ok := k.Get(7); !ok || v != 70 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !k.Remove(7) {
		t.Fatal("remove failed")
	}
	n := 0
	k.Put(1, 1)
	k.Put(2, 2)
	k.RangeFrom(0, func(uint32, uint32) bool { n++; return true })
	if n != 2 {
		t.Fatalf("scan saw %d", n)
	}
}
