package index

import (
	"cmp"
	"os"

	"repro/internal/baseline/kiwi"
	"repro/internal/core"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// Jiffy adapts core.Map to the harness Index/Batcher interfaces.
type Jiffy[K cmp.Ordered, V any] struct {
	M *core.Map[K, V]
}

// NewJiffy wraps a fresh Jiffy map with paper-default options.
func NewJiffy[K cmp.Ordered, V any](opts ...core.Options[K]) *Jiffy[K, V] {
	return &Jiffy[K, V]{M: core.New[K, V](opts...)}
}

// Name implements Named.
func (j *Jiffy[K, V]) Name() string { return "jiffy" }

// Get implements Index.
func (j *Jiffy[K, V]) Get(key K) (V, bool) { return j.M.Get(key) }

// Put implements Index.
func (j *Jiffy[K, V]) Put(key K, val V) { j.M.Put(key, val) }

// Remove implements Index.
func (j *Jiffy[K, V]) Remove(key K) bool { return j.M.Remove(key) }

// RangeFrom implements Index with a linearizable snapshot scan.
func (j *Jiffy[K, V]) RangeFrom(lo K, fn func(K, V) bool) { j.M.RangeFrom(lo, fn) }

// Iter implements Iterable with a pooled streaming iterator over an
// ephemeral snapshot.
func (j *Jiffy[K, V]) Iter() Iterator[K, V] { return j.M.Iter() }

// BatchUpdate implements Batcher with Jiffy's atomic batch updates.
func (j *Jiffy[K, V]) BatchUpdate(ops []BatchOp[K, V]) {
	b := core.NewBatch[K, V](len(ops))
	for _, op := range ops {
		if op.Remove {
			b.Remove(op.Key)
		} else {
			b.Put(op.Key, op.Val)
		}
	}
	j.M.BatchUpdate(b)
}

// ShardedJiffy adapts jiffy.Sharded — the hash-partitioned multi-shard
// frontend — to the harness Index/Batcher interfaces, so the harness can
// benchmark it against single-shard Jiffy and the baselines. Batch updates
// go through the cross-shard atomic path and scans through the k-way
// merged snapshot, so the adapter preserves the same consistency level the
// single-shard adapter reports.
type ShardedJiffy[K cmp.Ordered, V any] struct {
	S *jiffy.Sharded[K, V]
}

// NewShardedJiffy wraps a fresh sharded Jiffy map with the given shard
// count and paper-default options.
func NewShardedJiffy[K cmp.Ordered, V any](shards int, opts ...jiffy.Options[K]) *ShardedJiffy[K, V] {
	return &ShardedJiffy[K, V]{S: jiffy.NewSharded[K, V](shards, opts...)}
}

// Name implements Named.
func (j *ShardedJiffy[K, V]) Name() string { return "jiffy-sharded" }

// Get implements Index.
func (j *ShardedJiffy[K, V]) Get(key K) (V, bool) { return j.S.Get(key) }

// Put implements Index.
func (j *ShardedJiffy[K, V]) Put(key K, val V) { j.S.Put(key, val) }

// Remove implements Index.
func (j *ShardedJiffy[K, V]) Remove(key K) bool { return j.S.Remove(key) }

// RangeFrom implements Index with a merged cross-shard snapshot scan.
func (j *ShardedJiffy[K, V]) RangeFrom(lo K, fn func(K, V) bool) { j.S.RangeFrom(lo, fn) }

// Iter implements Iterable with a pooled loser-tree merge iterator over an
// ephemeral cross-shard snapshot.
func (j *ShardedJiffy[K, V]) Iter() Iterator[K, V] { return j.S.Iter() }

// BatchUpdate implements Batcher with cross-shard atomic batch updates.
func (j *ShardedJiffy[K, V]) BatchUpdate(ops []BatchOp[K, V]) {
	b := jiffy.NewBatch[K, V](len(ops))
	for _, op := range ops {
		if op.Remove {
			b.Remove(op.Key)
		} else {
			b.Put(op.Key, op.Val)
		}
	}
	j.S.BatchUpdate(b)
}

// DurableJiffy adapts durable.Map — Jiffy plus a write-ahead log and
// snapshot-consistent checkpoints — to the harness Index/Batcher
// interfaces, so the price of durability is measurable against the
// in-memory indices under identical workloads. The harness runs it with
// NoSync (no fsyncs), so the measured overhead is the logging path itself
// — encoding, group commit coordination and file writes — not the storage
// medium. Logging errors panic: the harness has no error channel and a
// failing log would invalidate the measurement anyway.
type DurableJiffy[K cmp.Ordered, V any] struct {
	D   *durable.Map[K, V]
	dir string
}

// NewDurableJiffy opens a durable Jiffy map in dir with the given codec
// and options. Close deletes dir — the harness treats the store as
// scratch, one per measurement point.
func NewDurableJiffy[K cmp.Ordered, V any](dir string, codec durable.Codec[K, V], opts durable.Options[K]) *DurableJiffy[K, V] {
	d, err := durable.Open(dir, codec, opts)
	if err != nil {
		panic("index: durable open: " + err.Error())
	}
	return &DurableJiffy[K, V]{D: d, dir: dir}
}

// Close closes the log and deletes the scratch store. The harness closes
// every index that has a Close after measuring it.
func (j *DurableJiffy[K, V]) Close() error {
	err := j.D.Close()
	if rmErr := os.RemoveAll(j.dir); err == nil {
		err = rmErr
	}
	return err
}

// Name implements Named.
func (j *DurableJiffy[K, V]) Name() string { return "jiffy-durable" }

// Get implements Index.
func (j *DurableJiffy[K, V]) Get(key K) (V, bool) { return j.D.Get(key) }

// Put implements Index with a durably logged update.
func (j *DurableJiffy[K, V]) Put(key K, val V) {
	if err := j.D.Put(key, val); err != nil {
		panic("index: durable put: " + err.Error())
	}
}

// Remove implements Index with a durably logged remove.
func (j *DurableJiffy[K, V]) Remove(key K) bool {
	ok, err := j.D.Remove(key)
	if err != nil {
		panic("index: durable remove: " + err.Error())
	}
	return ok
}

// RangeFrom implements Index with a linearizable snapshot scan.
func (j *DurableJiffy[K, V]) RangeFrom(lo K, fn func(K, V) bool) { j.D.RangeFrom(lo, fn) }

// Iter implements Iterable; durability adds nothing to the read path.
func (j *DurableJiffy[K, V]) Iter() Iterator[K, V] { return j.D.Iter() }

// BatchUpdate implements Batcher; the batch is one atomic log record.
func (j *DurableJiffy[K, V]) BatchUpdate(ops []BatchOp[K, V]) {
	b := jiffy.NewBatch[K, V](len(ops))
	for _, op := range ops {
		if op.Remove {
			b.Remove(op.Key)
		} else {
			b.Put(op.Key, op.Val)
		}
	}
	if err := j.D.BatchUpdate(b); err != nil {
		panic("index: durable batch: " + err.Error())
	}
}

// Kiwi adapts the uint32-specialized KiWi baseline to the uint32 harness
// configuration (KiWi supports only 4-byte integer keys, paper footnote 8).
type Kiwi struct {
	M *kiwi.Map
}

// NewKiwi wraps a fresh KiWi map.
func NewKiwi() *Kiwi { return &Kiwi{M: kiwi.New()} }

// Name implements Named.
func (k *Kiwi) Name() string { return "kiwi" }

// Get implements Index.
func (k *Kiwi) Get(key uint32) (uint32, bool) { return k.M.Get(key) }

// Put implements Index.
func (k *Kiwi) Put(key, val uint32) { k.M.Put(key, val) }

// Remove implements Index.
func (k *Kiwi) Remove(key uint32) bool { return k.M.Remove(key) }

// RangeFrom implements Index.
func (k *Kiwi) RangeFrom(lo uint32, fn func(uint32, uint32) bool) { k.M.RangeFrom(lo, fn) }
