// Package index defines the common ordered-index contract shared by Jiffy
// and every baseline the paper evaluates against (§4.1), so the benchmark
// harness can drive them interchangeably.
package index

import "cmp"

// Index is the minimal ordered key-value map surface every competitor
// implements. All methods must be safe for concurrent use.
type Index[K cmp.Ordered, V any] interface {
	// Get returns the value stored for key.
	Get(key K) (V, bool)
	// Put sets the value for key, overwriting any previous value.
	Put(key K, val V)
	// Remove deletes key, reporting whether it was present.
	Remove(key K) bool
	// RangeFrom visits entries with key >= lo in ascending order until
	// fn returns false. Consistency guarantees differ per
	// implementation: Jiffy, the CA trees, LFCA, SnapTree, k-ary and
	// KiWi provide linearizable (atomic) scans; CSLM's are weakly
	// consistent (as in java.util.concurrent).
	RangeFrom(lo K, fn func(key K, val V) bool)
}

// Iterator is a pull-style cursor over one consistent view of an index:
// Seek positions it before the first entry >= key, Next advances it,
// Key/Value read the current entry, Close releases it. The method set
// matches jiffy.Iterator so the jiffy frontends' iterators satisfy it
// directly.
type Iterator[K cmp.Ordered, V any] interface {
	Seek(key K)
	Next() bool
	Key() K
	Value() V
	Close()
}

// Iterable is implemented by indices that expose streaming iterators (the
// jiffy frontends). The harness prefers an iterator for its bounded
// scanner role when the index offers one: a count-limited scan then stops
// pulling instead of cancelling a push-style callback.
type Iterable[K cmp.Ordered, V any] interface {
	Iter() Iterator[K, V]
}

// BatchOp is one operation inside an atomic batch update.
type BatchOp[K cmp.Ordered, V any] struct {
	Key    K
	Val    V
	Remove bool
}

// Batcher is implemented by indices that support atomic batch updates
// (Jiffy, CA-AVL, CA-SL).
type Batcher[K cmp.Ordered, V any] interface {
	BatchUpdate(ops []BatchOp[K, V])
}

// Name is implemented by all indices for harness reporting.
type Named interface {
	Name() string
}
