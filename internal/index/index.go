// Package index defines the common ordered-index contract shared by Jiffy
// and every baseline the paper evaluates against (§4.1), so the benchmark
// harness can drive them interchangeably.
package index

import "cmp"

// Index is the minimal ordered key-value map surface every competitor
// implements. All methods must be safe for concurrent use.
type Index[K cmp.Ordered, V any] interface {
	// Get returns the value stored for key.
	Get(key K) (V, bool)
	// Put sets the value for key, overwriting any previous value.
	Put(key K, val V)
	// Remove deletes key, reporting whether it was present.
	Remove(key K) bool
	// RangeFrom visits entries with key >= lo in ascending order until
	// fn returns false. Consistency guarantees differ per
	// implementation: Jiffy, the CA trees, LFCA, SnapTree, k-ary and
	// KiWi provide linearizable (atomic) scans; CSLM's are weakly
	// consistent (as in java.util.concurrent).
	RangeFrom(lo K, fn func(key K, val V) bool)
}

// BatchOp is one operation inside an atomic batch update.
type BatchOp[K cmp.Ordered, V any] struct {
	Key    K
	Val    V
	Remove bool
}

// Batcher is implemented by indices that support atomic batch updates
// (Jiffy, CA-AVL, CA-SL).
type Batcher[K cmp.Ordered, V any] interface {
	BatchUpdate(ops []BatchOp[K, V])
}

// Name is implemented by all indices for harness reporting.
type Named interface {
	Name() string
}
