package index

import (
	"cmp"

	"repro/jiffy"
	"repro/jiffy/client"
)

// NetJiffy adapts jiffy/client — the network client for jiffyd — to the
// harness Index/Batcher/Iterable interfaces, so the benchmark harness can
// drive a jiffy store across a real socket with the same workloads it
// drives in-process indices with. The adapter preserves the consistency
// story end to end: batch updates are atomic cross-shard on the server,
// and the Iterable scans pull cursored pages (each page an ephemeral
// server-side snapshot for live scans).
//
// Like the durable adapter, transport errors panic: the harness has no
// error channel and a dead connection invalidates the measurement anyway.
type NetJiffy[K cmp.Ordered, V any] struct {
	C *client.Client[K, V]
}

// NewNetJiffy wraps an existing client connection pool.
func NewNetJiffy[K cmp.Ordered, V any](c *client.Client[K, V]) *NetJiffy[K, V] {
	return &NetJiffy[K, V]{C: c}
}

// Close closes the client pool. The harness closes every index that has a
// Close after measuring it.
func (j *NetJiffy[K, V]) Close() error { return j.C.Close() }

// Name implements Named.
func (j *NetJiffy[K, V]) Name() string { return "jiffy-net" }

// Get implements Index with a network round trip.
func (j *NetJiffy[K, V]) Get(key K) (V, bool) {
	v, ok, err := j.C.Get(key)
	if err != nil {
		panic("index: net get: " + err.Error())
	}
	return v, ok
}

// Put implements Index.
func (j *NetJiffy[K, V]) Put(key K, val V) {
	if err := j.C.Put(key, val); err != nil {
		panic("index: net put: " + err.Error())
	}
}

// Remove implements Index.
func (j *NetJiffy[K, V]) Remove(key K) bool {
	ok, err := j.C.Remove(key)
	if err != nil {
		panic("index: net remove: " + err.Error())
	}
	return ok
}

// RangeFrom implements Index with a cursored paged scan.
func (j *NetJiffy[K, V]) RangeFrom(lo K, fn func(K, V) bool) {
	sc := j.C.Scan(lo)
	defer sc.Close()
	for sc.Next() {
		if !fn(sc.Key(), sc.Value()) {
			return
		}
	}
	if err := sc.Err(); err != nil {
		panic("index: net scan: " + err.Error())
	}
}

// Iter implements Iterable with a cursored paged scanner.
func (j *NetJiffy[K, V]) Iter() Iterator[K, V] {
	return netIter[K, V]{sc: j.C.ScanAll()}
}

// netIter lifts client.Scanner (whose method set already matches) into
// the harness Iterator, converting its sticky error into a panic at the
// point Next gives up.
type netIter[K cmp.Ordered, V any] struct {
	sc *client.Scanner[K, V]
}

func (it netIter[K, V]) Seek(key K) { it.sc.Seek(key) }
func (it netIter[K, V]) Next() bool {
	if it.sc.Next() {
		return true
	}
	if err := it.sc.Err(); err != nil {
		panic("index: net scan: " + err.Error())
	}
	return false
}
func (it netIter[K, V]) Key() K   { return it.sc.Key() }
func (it netIter[K, V]) Value() V { return it.sc.Value() }
func (it netIter[K, V]) Close()   { it.sc.Close() }

// BatchUpdate implements Batcher: the whole batch is one wire frame and
// one atomic cross-shard update on the server.
func (j *NetJiffy[K, V]) BatchUpdate(ops []BatchOp[K, V]) {
	jops := make([]jiffy.BatchOp[K, V], len(ops))
	for i, op := range ops {
		jops[i] = jiffy.BatchOp[K, V]{Key: op.Key, Val: op.Val, Remove: op.Remove}
	}
	if err := j.C.BatchUpdate(jops); err != nil {
		panic("index: net batch: " + err.Error())
	}
}
