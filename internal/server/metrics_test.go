package server

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/jiffy/client"
)

// TestMetricsEndToEnd drives real client traffic through each serving
// core and asserts the instrument panel moved: per-op request counters,
// latency histogram counts, response status classification, connection
// and session lifecycle gauges, byte counters — and that the rendered
// exposition carries the same numbers, which is what a scraper sees.
func TestMetricsEndToEnd(t *testing.T) {
	for _, mode := range []Mode{ModeEventLoop, ModeGoroutine} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			_, srv, addr := startServer(t, 2, Options{Mode: mode, Registry: reg})
			if srv.Mode() != mode {
				t.Skipf("core %v unavailable here", mode)
			}
			c := dial(t, addr, client.Options{Conns: 1})

			const puts = 20
			for i := uint64(0); i < puts; i++ {
				if err := c.Put(i, i*i); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			for i := uint64(0); i < 10; i++ {
				if _, _, err := c.Get(i); err != nil {
					t.Fatalf("get: %v", err)
				}
			}
			if _, _, err := c.Get(1 << 40); err != nil { // a miss: not_found status
				t.Fatalf("get miss: %v", err)
			}
			if _, err := c.Remove(3); err != nil {
				t.Fatalf("remove: %v", err)
			}
			snap, err := c.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			sc := snap.ScanAll()
			for sc.Next() {
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("scan: %v", err)
			}
			sc.Close()

			m := srv.metrics
			if got := m.requests[wire.OpPut].Value(); got != puts {
				t.Errorf("put requests = %d, want %d", got, puts)
			}
			if got := m.latency[wire.OpPut].Count(); got != puts {
				t.Errorf("put latency observations = %d, want %d", got, puts)
			}
			if got := m.requests[wire.OpGet].Value(); got != 11 {
				t.Errorf("get requests = %d, want 11", got)
			}
			if m.requests[wire.OpSnap].Value() != 1 || m.requests[wire.OpScan].Value() == 0 {
				t.Errorf("snap/scan requests = %d/%d, want 1/>0",
					m.requests[wire.OpSnap].Value(), m.requests[wire.OpScan].Value())
			}
			if got := m.responses[wire.StatusNotFound].Value(); got == 0 {
				t.Error("no not_found responses counted after a get miss")
			}
			if got := m.responses[wire.StatusOK].Value(); got < puts {
				t.Errorf("ok responses = %d, want >= %d", got, puts)
			}
			if got := m.inflight.Value(); got != 0 {
				t.Errorf("inflight = %d after traffic quiesced, want 0", got)
			}
			if m.connsTotal.Value() == 0 || m.conns.Value() == 0 {
				t.Errorf("connection gauges = total %d, open %d; want both > 0",
					m.connsTotal.Value(), m.conns.Value())
			}
			if m.bytesIn.Value() == 0 || m.bytesOut.Value() == 0 {
				t.Errorf("byte counters = in %d, out %d; want both > 0",
					m.bytesIn.Value(), m.bytesOut.Value())
			}
			if m.sessionsOpened.Value() != 1 || m.sessionsOpen.Value() != 1 {
				t.Errorf("sessions opened/open = %d/%d, want 1/1",
					m.sessionsOpened.Value(), m.sessionsOpen.Value())
			}

			// The exposition must carry the same series a scraper alerts on.
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			exp := sb.String()
			for _, want := range []string{
				`jiffyd_requests_total{op="put"} 20`,
				`jiffyd_requests_total{op="get"} 11`,
				`jiffyd_request_seconds_count{op="put"} 20`,
				`jiffyd_sessions_opened_total 1`,
			} {
				if !strings.Contains(exp, want) {
					t.Errorf("exposition missing %q", want)
				}
			}

			// Closing the client must drop the open-connections gauge and
			// release its session.
			c.Close()
			deadline := time.Now().Add(5 * time.Second)
			for m.conns.Value() != 0 || m.sessionsOpen.Value() != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("after close: conns=%d sessions=%d, want 0/0",
						m.conns.Value(), m.sessionsOpen.Value())
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestMetricsSessionReapCounted pins the reaper's counter: an abandoned
// session must show up in jiffyd_sessions_reaped_total and leave
// jiffyd_sessions_open at zero.
func TestMetricsSessionReapCounted(t *testing.T) {
	_, srv, addr := startServer(t, 1, Options{SnapTTL: 50 * time.Millisecond})
	c := dial(t, addr, client.Options{Conns: 1})
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	m := srv.metrics
	deadline := time.Now().Add(5 * time.Second)
	for m.sessionsReaped.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never counted as reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.sessionsOpen.Value(); got != 0 {
		t.Fatalf("sessions open = %d after reap, want 0", got)
	}
}

// TestMetricsDefaultRegistry asserts the server instruments even with no
// Registry configured — the hot path must be identical either way.
func TestMetricsDefaultRegistry(t *testing.T) {
	_, srv, addr := startServer(t, 1, Options{})
	c := dial(t, addr, client.Options{Conns: 1})
	if err := c.Put(1, 2); err != nil {
		t.Fatalf("put: %v", err)
	}
	if got := srv.metrics.requests[wire.OpPut].Value(); got != 1 {
		t.Fatalf("private-registry put count = %d, want 1", got)
	}
}
