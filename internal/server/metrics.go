package server

import (
	"encoding/binary"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// This file wires the serving layer into internal/obs. A Server always
// carries a metrics struct — into the caller's registry when
// Options.Registry is set, into a private one otherwise — so the
// instrumented path is the only path: the committed benchmarks
// (BENCH_0007) measure exactly what production serves, and enabling the
// endpoint cannot change performance. Every hot-path metric is a striped
// atomic (see internal/obs); the per-request cost is a few nanoseconds of
// counter adds plus two monotonic clock reads for the latency histogram,
// against multi-microsecond request service times.

// opNames maps request opcodes to their metric label. Index 0 is the
// unknown-opcode bucket.
var opNames = [wire.OpScan + 1]string{
	0:                "unknown",
	wire.OpPing:      "ping",
	wire.OpGet:       "get",
	wire.OpPut:       "put",
	wire.OpDel:       "del",
	wire.OpBatch:     "batch",
	wire.OpSnap:      "snap",
	wire.OpSnapClose: "snap_close",
	wire.OpScan:      "scan",
}

// statusNames maps response status bytes to their metric label.
var statusNames = [wire.StatusErr + 1]string{
	wire.StatusOK:          "ok",
	wire.StatusNotFound:    "not_found",
	wire.StatusUnknownSnap: "unknown_snap",
	wire.StatusBadRequest:  "bad_request",
	wire.StatusErr:         "error",
}

// metrics is the server's instrument panel, shared by both cores.
type metrics struct {
	// Protocol engine (state.go, via connState.exec).
	requests  [len(opNames)]*obs.Counter   // completed requests by op
	latency   [len(opNames)]*obs.Histogram // service seconds by op
	responses [len(statusNames)]*obs.Counter
	inflight  *obs.UpDown

	// Connection lifecycle (accept.go, conn.go, loop.go).
	connsTotal  *obs.Counter
	conns       *obs.UpDown
	connsPaused *obs.UpDown
	pauses      *obs.Counter
	resumes     *obs.Counter
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter

	// Snapshot sessions (state.go, server.go reaper).
	sessionsOpen   *obs.UpDown
	sessionsOpened *obs.Counter
	sessionsReaped *obs.Counter

	// Event-loop core (loop.go, flush.go).
	loopWakeups  *obs.Counter
	dirtyqDepth  *obs.Histogram
	writevBytes  *obs.Histogram
	writevIovecs *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{}
	for i, name := range opNames {
		if name == "" {
			continue
		}
		m.requests[i] = r.Counter(`jiffyd_requests_total{op="`+name+`"}`,
			"Requests executed, by opcode.")
		m.latency[i] = r.Histogram(`jiffyd_request_seconds{op="`+name+`"}`,
			"Request service time (decode through response encode), by opcode.",
			obs.LatencyBuckets)
	}
	for i, name := range statusNames {
		m.responses[i] = r.Counter(`jiffyd_responses_total{status="`+name+`"}`,
			"Responses sent, by status.")
	}
	m.inflight = r.UpDown("jiffyd_inflight_requests",
		"Requests currently executing against the store.")
	m.connsTotal = r.Counter("jiffyd_connections_total",
		"Connections accepted since start.")
	m.conns = r.UpDown("jiffyd_connections",
		"Connections currently registered.")
	m.connsPaused = r.UpDown("jiffyd_connections_paused",
		"Connections with reading suspended by output backpressure.")
	m.pauses = r.Counter("jiffyd_backpressure_pauses_total",
		"Transitions into read-paused (output high-water crossed).")
	m.resumes = r.Counter("jiffyd_backpressure_resumes_total",
		"Transitions out of read-paused (backlog drained).")
	m.bytesIn = r.Counter("jiffyd_bytes_read_total",
		"Request bytes read from clients.")
	m.bytesOut = r.Counter("jiffyd_bytes_written_total",
		"Response bytes written to clients.")
	m.sessionsOpen = r.UpDown("jiffyd_sessions_open",
		"Snapshot sessions currently registered.")
	m.sessionsOpened = r.Counter("jiffyd_sessions_opened_total",
		"Snapshot sessions opened since start.")
	m.sessionsReaped = r.Counter("jiffyd_sessions_reaped_total",
		"Snapshot sessions closed by the idle-TTL reaper.")
	m.loopWakeups = r.Counter("jiffyd_loop_wakeups_total",
		"Event-loop poll returns (readiness bursts serviced).")
	m.dirtyqDepth = r.Histogram("jiffyd_loop_dirtyq_depth",
		"Connections flushed per event-loop wake (response coalescing width).",
		obs.CountBuckets)
	m.writevBytes = r.Histogram("jiffyd_writev_bytes",
		"Bytes per writev flush.", obs.SizeBuckets)
	m.writevIovecs = r.Histogram("jiffyd_writev_iovecs",
		"Output chunks per writev flush.", obs.CountBuckets)
	return m
}

// opIndex folds an opcode into its opNames slot.
func opIndex(op byte) int {
	if int(op) < len(opNames) && opNames[op] != "" {
		return int(op)
	}
	return 0
}

// exec is the instrumented request executor both cores call instead of
// connState.handle: strip the trace envelope, arm the request's trace
// context, count, time, execute, classify the response status, and leave
// the server-side span (plus the slow-request log line when the request
// crossed Options.TraceSlow).
func (st *connState[K, V]) exec(dst []byte, id uint64, op byte, body []byte) []byte {
	m := st.srv.metrics
	var tid uint64
	if op&wire.FlagTraced != 0 {
		if len(body) < 8 {
			return errFrame(dst, id, wire.StatusBadRequest, "traced request: short body")
		}
		tid = binary.LittleEndian.Uint64(body)
		body = body[8:]
		op &= wire.OpMask
	}
	st.tctx.Arm(st.srv.opts.Tracer, tid, op)
	oi := opIndex(op)
	m.inflight.Add(1)
	start := time.Now()
	out := st.handle(dst, id, op, body)
	dur := time.Since(start)
	m.latency[oi].Observe(dur.Seconds())
	m.inflight.Add(-1)
	m.requests[oi].Inc()
	if tr := st.srv.opts.Tracer; tr != nil {
		tr.Record(trace.StageServer, tid, op, start, dur, int64(len(out)-len(dst)))
		if slow := st.srv.opts.TraceSlow; slow > 0 && dur >= slow && st.srv.opts.TraceLog != nil {
			wal := time.Duration(st.tctx.StageNanos(trace.StageWAL))
			st.srv.opts.TraceLog.Warn("slow request",
				"trace", strconv.FormatUint(tid, 16),
				"op", opNames[oi],
				"dur", dur,
				"stage_wal", wal,
				"stage_other", dur-wal)
		}
	}
	// The response frame begins at len(dst): u32 len | u64 id | u8 status.
	if len(out) >= len(dst)+13 {
		if status := out[len(dst)+12]; int(status) < len(m.responses) {
			m.responses[status].Inc()
		}
	}
	return out
}

// RegisterStoreStats exposes the index's structural diagnostics
// (jiffy.Stats) as gauges refreshed by a scrape hook: one O(n) Stats walk
// per scrape, none between scrapes. jiffyd and the soak harness both use
// it; the serving hot path never touches these.
func RegisterStoreStats(r *obs.Registry, stats func() jiffy.Stats) {
	nodes := r.Gauge("jiffy_nodes", "Base-level index nodes.")
	entries := r.Gauge("jiffy_entries", "Entries in head revisions (live state size).")
	revisions := r.Gauge("jiffy_revisions", "Revisions reachable from heads.")
	maxRevList := r.Gauge("jiffy_max_revision_list", "Longest revision list observed.")
	avgRevSize := r.Gauge("jiffy_avg_revision_size", "Mean entries per head revision.")
	pendingOps := r.Gauge("jiffy_pending_ops", "Head revisions awaiting a final version.")
	indexLevels := r.Gauge("jiffy_index_levels", "Skip-list index height.")
	poolHits := r.Gauge("jiffy_pool_hits", "Payload allocations served by the free pools (cumulative).")
	poolMisses := r.Gauge("jiffy_pool_misses", "Payload allocations that fell through to the heap (cumulative).")
	recycled := r.Gauge("jiffy_recycled_bytes", "Buffer bytes returned to the pools (cumulative).")
	epoch := r.Gauge("jiffy_epoch", "Current global reclamation epoch.")
	seekSamples := r.Gauge("jiffy_seek_samples", "Sampled version seeks (cumulative).")
	seekSteps := r.Gauge("jiffy_seek_steps", "Revision-chain hops across sampled seeks (cumulative).")
	r.OnScrape(func() {
		st := stats()
		nodes.Set(float64(st.Nodes))
		entries.Set(float64(st.Entries))
		revisions.Set(float64(st.Revisions))
		maxRevList.Set(float64(st.MaxRevisionList))
		avgRevSize.Set(st.AvgRevisionSize)
		pendingOps.Set(float64(st.PendingOps))
		indexLevels.Set(float64(st.IndexLevels))
		poolHits.Set(float64(st.PoolHits))
		poolMisses.Set(float64(st.PoolMisses))
		recycled.Set(float64(st.RecycledBytes))
		epoch.Set(float64(st.Epoch))
		seekSamples.Set(float64(st.SeekSamples))
		seekSteps.Set(float64(st.SeekSteps))
	})
}

// RegisterDurableStats exposes the durability layer's log and checkpoint
// state (durable.DurStats) as scrape-refreshed gauges.
func RegisterDurableStats(r *obs.Registry, stats func() durable.DurStats) {
	segs := r.Gauge("jiffy_wal_segments", "Live WAL segments (sealed plus active) across shards.")
	bytes := r.Gauge("jiffy_wal_live_bytes", "Bytes held by live WAL segments across shards.")
	ckVer := r.Gauge("jiffy_checkpoint_version", "Commit version of the newest checkpoint (0: none).")
	ckAge := r.Gauge("jiffy_checkpoint_age_seconds", "Seconds since the newest checkpoint was written (-1: none).")
	r.OnScrape(func() {
		st := stats()
		segs.Set(float64(st.WALSegments))
		bytes.Set(float64(st.WALLiveBytes))
		ckVer.Set(float64(st.CheckpointVersion))
		if st.CheckpointTime.IsZero() {
			ckAge.Set(-1)
		} else {
			ckAge.Set(time.Since(st.CheckpointTime).Seconds())
		}
	})
}
