package server

import (
	"time"

	"repro/internal/netpoll"
	"repro/internal/trace"
)

// This file is the write half of the event-loop core: per-connection
// output buffering, writev flush coalescing, and the backpressure that
// keeps a slow-reading client from stalling its loop or ballooning server
// memory. See loop.go for the loop itself.

const (
	// outChunkSeal is the size at which the active output chunk is sealed
	// and a fresh one started: responses keep appending with no memmove,
	// and the sealed chunks leave in one writev. Large enough that small
	// responses coalesce into few iovecs, small enough that one chunk's
	// regrowth copies stay cheap.
	outChunkSeal = 64 << 10

	// outHighWater pauses reading from a connection whose unflushed
	// output exceeds it: the client is not consuming responses, so the
	// server stops consuming its requests (TCP pushes back from there)
	// instead of buffering without bound. Large enough for one max-sized
	// scan page plus headroom.
	outHighWater = 8 << 20

	// outLowWater resumes reading once a paused connection's backlog
	// drains below it.
	outLowWater = 1 << 20
)

// outBuf is an event-loop connection's pending output: a queue of sealed
// chunks awaiting flush plus the active chunk responses append to. Chunks
// are pooled via respPool (shared with the goroutine core — same
// lifecycle, same size discipline). Owned by the loop goroutine.
type outBuf struct {
	chunks [][]byte // sealed, flush order; chunks[head][off:] is next out
	head   int      // first unflushed chunk
	off    int      // flushed prefix of chunks[head]
	cur    []byte   // active append chunk (nil when none)
	bytes  int      // total unflushed bytes across chunks and cur
}

// active returns the buffer to append the next response frame onto.
func (b *outBuf) active() []byte {
	if b.cur == nil {
		b.cur = getResp()
	}
	return b.cur
}

// appended installs the handler's result (the active buffer extended by
// one response frame), sealing the chunk once it is large enough to be
// worth a dedicated iovec. pre is the buffer's length before the append.
func (b *outBuf) appended(dst []byte, pre int) {
	b.bytes += len(dst) - pre
	if len(dst) >= outChunkSeal {
		b.chunks = append(b.chunks, dst)
		b.cur = nil
		return
	}
	b.cur = dst
}

// seal moves the active chunk onto the flush queue.
func (b *outBuf) seal() {
	if len(b.cur) > 0 {
		b.chunks = append(b.chunks, b.cur)
		b.cur = nil
	}
}

// pending appends the unflushed chunk views to iov and returns it.
func (b *outBuf) pending(iov [][]byte) [][]byte {
	if b.head < len(b.chunks) {
		iov = append(iov, b.chunks[b.head][b.off:])
		for _, c := range b.chunks[b.head+1:] {
			iov = append(iov, c)
		}
	}
	return iov
}

// consume records n flushed bytes, recycling fully written chunks.
func (b *outBuf) consume(n int) {
	b.bytes -= n
	for n > 0 {
		rem := len(b.chunks[b.head]) - b.off
		if n < rem {
			b.off += n
			return
		}
		n -= rem
		putResp(b.chunks[b.head])
		b.chunks[b.head] = nil
		b.head++
		b.off = 0
	}
	if b.head == len(b.chunks) {
		b.chunks = b.chunks[:0]
		b.head = 0
	}
}

// release recycles everything (connection teardown).
func (b *outBuf) release() {
	for _, c := range b.chunks[b.head:] {
		putResp(c)
	}
	if b.cur != nil {
		putResp(b.cur)
	}
	b.chunks, b.cur, b.head, b.off, b.bytes = nil, nil, 0, 0, 0
}

// flush writes c's pending output until the socket would block or the
// backlog drains. On EAGAIN it arms write interest and returns; once the
// backlog is gone it disarms write interest. For a connection paused by
// backpressure the write loop stops early, at the low-water mark: reading
// resumes there — re-running the frame processor first, because frames
// already buffered in c.in will get no new readiness event — and the
// loop comes back around to flush whatever remains plus whatever the
// resumed processing produced.
func (l *loop[K, V]) flush(c *elConn[K, V]) {
	for {
		c.out.seal()
		for c.out.bytes > 0 {
			if c.paused && c.out.bytes < outLowWater {
				break // resume reading below; the leftover flushes next pass
			}
			l.iov = c.out.pending(l.iov[:0])
			tr := l.srv.opts.Tracer
			var fstart time.Time
			if tr != nil {
				fstart = time.Now()
			}
			n, err := l.p.Writev(c.fd, l.iov)
			if err == netpoll.ErrAgain {
				l.setInterest(c, !c.paused, true)
				return
			}
			if err != nil {
				l.teardown(c)
				return
			}
			if tr != nil {
				// Flush spans are batch-level (trace ID 0): one writev
				// carries many responses, so per-request flush attribution
				// would mean tracking byte ranges per trace — the stage
				// histogram and Extra byte count answer the capacity
				// question without that bookkeeping.
				tr.Record(trace.StageFlush, 0, 0, fstart, time.Since(fstart), int64(n))
			}
			m := l.srv.metrics
			m.bytesOut.Add(uint64(n))
			m.writevBytes.Observe(float64(n))
			m.writevIovecs.Observe(float64(len(l.iov)))
			c.out.consume(n)
		}
		if !c.paused {
			l.setInterest(c, true, false)
			return
		}
		// Drained below the low-water mark: resume reading and execute
		// any requests that were already buffered while paused. That can
		// refill the output, so loop back around to flush again.
		c.paused = false
		l.srv.metrics.resumes.Inc()
		l.srv.metrics.connsPaused.Add(-1)
		l.setInterest(c, true, c.out.bytes > 0)
		if !l.processFrames(c) {
			return // torn down
		}
		if c.out.bytes == 0 {
			return
		}
	}
}
