package server

import (
	"errors"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/netpoll"
)

// This file is the acceptor: one goroutine accepting connections and
// handing each to its serving core. In ModeEventLoop the connection's fd
// is extracted, switched to non-blocking, and registered round-robin onto
// one of the event loops; connections whose fd cannot be extracted (a
// test's in-memory pipe, a future TLS wrapper) fall back to the goroutine
// core individually, so the two cores interoperate behind one listener.

// startLoops creates and starts the event loops.
func (s *Server[K, V]) startLoops() error {
	n := s.opts.Loops
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	loops := make([]*loop[K, V], 0, n)
	for i := 0; i < n; i++ {
		l, err := newLoop(s)
		if err != nil {
			for _, prev := range loops {
				prev.p.Close()
			}
			return err
		}
		loops = append(loops, l)
	}
	s.loops = loops
	s.wg.Add(len(loops))
	for _, l := range loops {
		go l.run()
	}
	return nil
}

// acceptLoop accepts connections until the listener closes.
func (s *Server[K, V]) acceptLoop() {
	defer s.wg.Done()
	next := 0
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("jiffyd: accept: %v", err)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if s.mode == ModeEventLoop {
			if s.adoptConn(nc, next) {
				next++
				continue
			}
			// Fall through: fd extraction failed, serve it on goroutines.
		}
		if !s.spawnConn(nc) {
			return // server closed
		}
	}
}

// adoptConn extracts nc's fd and registers it on an event loop. Returns
// false when the fd cannot be extracted (caller falls back to the
// goroutine core); nc is consumed either way on true.
func (s *Server[K, V]) adoptConn(nc net.Conn, seq int) bool {
	f, ok := fileOf(nc)
	if !ok {
		return false
	}
	// File() duplicated the fd; the original conn's copy is redundant.
	nc.Close()
	fd := int(f.Fd())
	if err := netpoll.SetNonblock(fd); err != nil {
		f.Close()
		s.logf("jiffyd: nonblock: %v", err)
		return true
	}
	l := s.loops[seq%len(s.loops)]
	c := &elConn[K, V]{
		st: connState[K, V]{srv: s, sess: map[uint64]*session[K, V]{}},
		l:  l,
		fd: fd,
		// f.Fd() puts the file into blocking mode as a side effect of
		// publishing the raw descriptor; SetNonblock above undoes that.
		// Keeping f referenced keeps its finalizer from closing fd.
		file: f,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		f.Close()
		return true
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	// Count before register: once registered the loop owns c and may tear
	// it down (decrementing) at any moment.
	s.metrics.connsTotal.Inc()
	s.metrics.conns.Add(1)
	if err := l.register(c); err != nil {
		s.metrics.conns.Add(-1)
		s.forget(c)
		f.Close()
	}
	return true
}

// filer is the subset of *net.TCPConn (and *net.UnixConn) the acceptor
// needs to extract a descriptor.
type filer interface {
	File() (*os.File, error)
}

// fileOf duplicates nc's descriptor into an *os.File, when nc has one.
func fileOf(nc net.Conn) (*os.File, bool) {
	fc, ok := nc.(filer)
	if !ok {
		return nil, false
	}
	f, err := fc.File()
	if err != nil {
		return nil, false
	}
	return f, true
}
