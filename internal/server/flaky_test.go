package server

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/wire"
	"repro/jiffy/client"
)

// These tests put misbehaving clients in front of the server — dribbling
// writers, mid-frame resets, readers that stop reading — and assert the
// property that matters for a shared event loop: one bad connection
// never blocks the loop's other connections, and every teardown is
// clean (no goroutine, fd, or session leak; LeakCheck enforces the
// first two, TestIdleScanCursorDoesNotBlockReclamation-style assertions
// the third).

// TestFlakyNeighborsStayLive runs one event loop (Loops: 1, so every
// connection shares it) carrying a healthy client and a crowd of flaky
// ones — short writes fragmenting frames across many syscalls, periodic
// stalls, and mid-frame resets. The healthy client's pings must keep
// round-tripping throughout.
func TestFlakyNeighborsStayLive(t *testing.T) {
	testutil.LeakCheck(t)
	_, _, addr := startServer(t, 4, Options{Mode: ModeEventLoop, Loops: 1})

	healthy := dial(t, addr, client.Options{Conns: 1})
	if err := healthy.Ping(); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seed := int64(i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					continue
				}
				fc := testutil.NewFlaky(raw, testutil.Faults{
					ShortWrites:     3,
					StallEvery:      7,
					Stall:           2 * time.Millisecond,
					ResetAfterBytes: 200 + 100*i,
					Seed:            seed,
				})
				seed += 1000
				// Dribble pings and puts until the reset fault kills us.
				frame := wire.AppendFrame(nil, 1, wire.OpPing, nil)
				frame = wire.AppendFrame(frame, 2, wire.OpPut, func() []byte {
					b := wire.AppendBytes(nil, []byte{1, 0, 0, 0, 0, 0, 0, 0})
					return wire.AppendBytes(b, []byte{2, 0, 0, 0, 0, 0, 0, 0})
				}())
				for {
					if _, err := fc.Write(frame); err != nil {
						break
					}
				}
				fc.Close()
			}
		}()
	}

	// The healthy connection must answer promptly the whole time the
	// flaky crowd churns.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		start := time.Now()
		if err := healthy.Ping(); err != nil {
			t.Fatalf("healthy ping during fault storm: %v", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("healthy ping took %v behind flaky neighbors", d)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSlowReaderDoesNotBlockLoop shares one event loop between a reader
// that stops consuming responses mid-scan (forcing the server's output
// backlog toward the high-water mark) and a healthy client. The healthy
// client must stay live while the slow one is paused, and the slow one
// must finish once it resumes reading.
func TestSlowReaderDoesNotBlockLoop(t *testing.T) {
	testutil.LeakCheck(t)
	s, _, addr := startServer(t, 4, Options{Mode: ModeEventLoop, Loops: 1})
	for i := uint64(0); i < 5000; i++ {
		s.Put(i, i)
	}

	healthy := dial(t, addr, client.Options{Conns: 1})

	// The slow reader: request a pile of scan pages raw, read nothing yet.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer slow.Close()
	var req []byte
	for id := uint64(1); id <= 64; id++ {
		body := []byte{0, 0, 0, 0, 0, 0, 0, 0}      // snapID 0
		body = append(body, 0, 0, 0, 0, 0, 0, 0, 0) // floor 0
		body = append(body, 0xff, 0xff, 0, 0)       // maxEntries (clamped server-side)
		body = append(body, wire.ScanFromStart)
		req = wire.AppendFrame(req, id, wire.OpScan, body)
	}
	if _, err := slow.Write(req); err != nil {
		t.Fatalf("write scan burst: %v", err)
	}

	// While the backlog sits unread, the healthy neighbor keeps working.
	for i := 0; i < 50; i++ {
		if err := healthy.Ping(); err != nil {
			t.Fatalf("ping %d behind slow reader: %v", i, err)
		}
		if _, ok, err := healthy.Get(7); !ok || err != nil {
			t.Fatalf("get behind slow reader: %v/%v", ok, err)
		}
	}

	// Resume reading: all 64 pages arrive intact.
	slow.SetReadDeadline(time.Now().Add(10 * time.Second))
	var got atomic.Int64
	var buf []byte
	for got.Load() < 64 {
		_, status, _, nbuf, err := wire.ReadFrame(slow, buf)
		buf = nbuf
		if err != nil {
			t.Fatalf("slow reader resume after %d pages: %v", got.Load(), err)
		}
		if status != wire.StatusOK {
			t.Fatalf("scan page status %d", status)
		}
		got.Add(1)
	}
}

// scanBurst builds n pipelined sessionless full-scan requests. Each
// returns a full page (~80 KiB against the 5000-key fixture), and the
// loop executes the whole burst inline before any flush runs, so a large
// enough n is guaranteed to push the connection past the output
// high-water mark and pause it.
func scanBurst(n int) []byte {
	var req []byte
	for id := uint64(1); id <= uint64(n); id++ {
		body := []byte{0, 0, 0, 0, 0, 0, 0, 0}      // snapID 0 (sessionless)
		body = append(body, 0, 0, 0, 0, 0, 0, 0, 0) // floor 0
		body = append(body, 0xff, 0xff, 0, 0)       // maxEntries (clamped server-side)
		body = append(body, wire.ScanFromStart)
		req = wire.AppendFrame(req, id, wire.OpScan, body)
	}
	return req
}

// TestHalfCloseWhilePausedTearsDown pauses a connection by backpressure
// (a scan burst whose responses the client never reads) and then
// half-closes it with FIN. A paused connection has read interest
// dropped, so the hangup arrives only as the always-registered
// EPOLLRDHUP; the loop must tear the connection down from that signal.
// Ignoring it is a 100% CPU busy-spin — level-triggered epoll re-reports
// the event every wake — and the connection plus its sessions never die.
func TestHalfCloseWhilePausedTearsDown(t *testing.T) {
	testutil.LeakCheck(t)
	s, srv, addr := startServer(t, 4, Options{Mode: ModeEventLoop, Loops: 1})
	for i := uint64(0); i < 5000; i++ {
		s.Put(i, i)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// 128 full pages ≈ 10 MiB of responses: comfortably past the 8 MiB
	// high-water mark, so the connection pauses with most of it queued.
	if _, err := nc.Write(scanBurst(128)); err != nil {
		t.Fatalf("write scan burst: %v", err)
	}
	testutil.Eventually(t, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.conns) == 1
	}, "server never registered the connection")
	// Let the burst execute and the high-water pause engage, then send
	// FIN without having read a byte.
	time.Sleep(50 * time.Millisecond)
	if err := nc.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatalf("half-close: %v", err)
	}
	testutil.Eventually(t, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.conns) == 0
	}, "paused connection not torn down after peer half-close")
}

// TestBurstWithPromptReaderNeverWedges is the regression test for a
// dropped end-of-wake flush mark: when a flush during the dirtyq pass
// drains a paused connection below the low-water mark (a prompt reader
// keeps the socket writable), the resumed frame processing re-marks the
// connection dirty mid-pass. Those marks used to be silently dropped with
// the dirty flag left set, after which every later markDirty no-opped and
// responses sat buffered forever. Each round's trailing ping probes for
// exactly that wedge.
func TestBurstWithPromptReaderNeverWedges(t *testing.T) {
	testutil.LeakCheck(t)
	s, _, addr := startServer(t, 4, Options{Mode: ModeEventLoop, Loops: 1})
	for i := uint64(0); i < 5000; i++ {
		s.Put(i, i)
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(60 * time.Second))
	var buf []byte
	for round := 0; round < 4; round++ {
		const pages = 128
		if _, err := nc.Write(scanBurst(pages)); err != nil {
			t.Fatalf("round %d: write burst: %v", round, err)
		}
		for got := 0; got < pages; got++ {
			_, status, _, nbuf, err := wire.ReadFrame(nc, buf)
			buf = nbuf
			if err != nil {
				t.Fatalf("round %d: page %d: %v", round, got, err)
			}
			if status != wire.StatusOK {
				t.Fatalf("round %d: page %d: status %d", round, got, status)
			}
		}
		probe := wire.AppendFrame(nil, 1000+uint64(round), wire.OpPing, nil)
		if _, err := nc.Write(probe); err != nil {
			t.Fatalf("round %d: write probe: %v", round, err)
		}
		_, status, _, nbuf, err := wire.ReadFrame(nc, buf)
		buf = nbuf
		if err != nil || status != wire.StatusOK {
			t.Fatalf("round %d: probe after burst: status %d err %v", round, status, err)
		}
	}
}

// TestMidFrameResetCleansUp opens connections that die at every
// interesting moment — after the length prefix, mid-header, mid-body,
// between frames — with snapshot sessions open, and asserts the server
// releases everything: sessions close (reclamation resumes) and
// LeakCheck sees no goroutine or fd residue.
func TestMidFrameResetCleansUp(t *testing.T) {
	testutil.LeakCheck(t)
	s, srv, addr := startServer(t, 2, Options{Mode: ModeEventLoop, Loops: 1, SnapTTL: time.Hour})
	s.Put(1, 10)

	full := wire.AppendFrame(nil, 5, wire.OpSnap, nil)
	cuts := []int{1, 3, 4, 7, 12, len(full)}
	for _, cut := range cuts {
		for _, rst := range []bool{false, true} {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			if cut == len(full) {
				// Whole snap request: wait for the session to open so the
				// teardown path has real state to release.
				nc.Write(full)
				nc.SetReadDeadline(time.Now().Add(5 * time.Second))
				if _, status, _, _, err := wire.ReadFrame(nc, nil); err != nil || status != wire.StatusOK {
					t.Fatalf("snap open: status %d err %v", status, err)
				}
			} else {
				nc.Write(full[:cut])
			}
			if rst {
				if tc, ok := nc.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
			}
			nc.Close()
		}
	}

	// Every severed connection's state must drain: once the server has
	// forgotten them all, only the live-conn count remains.
	testutil.Eventually(t, func() bool {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		return n == 0
	}, "server still tracks %d conns after client resets", func() int {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.conns)
	}())
}
