package server

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// u64Codec is the uint64-key / uint64-value codec the tests serve.
func u64Codec() durable.Codec[uint64, uint64] {
	return durable.Codec[uint64, uint64]{Key: durable.Uint64Enc(), Value: durable.Uint64Enc()}
}

// startServer serves a fresh in-memory sharded map on a loopback port and
// returns the frontend (for white-box assertions), the server and its
// address. Cleanup closes the server.
func startServer(t *testing.T, shards int, opts Options) (*jiffy.Sharded[uint64, uint64], *Server[uint64, uint64], string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := jiffy.NewSharded[uint64, uint64](shards)
	srv := Serve(ln, NewMemStore(s), u64Codec(), opts)
	t.Cleanup(func() { srv.Close() })
	return s, srv, srv.Addr().String()
}

func dial(t *testing.T, addr string, opts client.Options) *client.Client[uint64, uint64] {
	t.Helper()
	c, err := client.Dial(addr, u64Codec(), opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestEndToEndBasics drives every opcode through a pipelined client:
// point ops, batches, snapshot sessions, cursored scans, and the
// not-found/unknown-session paths.
func TestEndToEndBasics(t *testing.T) {
	testutil.LeakCheck(t)
	for _, pipe := range []bool{true, false} {
		name := "pipelined"
		if !pipe {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			_, _, addr := startServer(t, 4, Options{})
			c := dial(t, addr, client.Options{Conns: 2, NoPipeline: !pipe, ScanPageSize: 16})

			if err := c.Ping(); err != nil {
				t.Fatalf("ping: %v", err)
			}
			const n = 200
			for i := uint64(0); i < n; i++ {
				if err := c.Put(i, i*10); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i += 13 {
				v, ok, err := c.Get(i)
				if err != nil || !ok || v != i*10 {
					t.Fatalf("get %d = %d/%v/%v, want %d", i, v, ok, err, i*10)
				}
			}
			if _, ok, err := c.Get(n + 500); ok || err != nil {
				t.Fatalf("get absent = %v/%v, want miss", ok, err)
			}
			if ok, err := c.Remove(0); !ok || err != nil {
				t.Fatalf("remove present = %v/%v", ok, err)
			}
			if ok, err := c.Remove(0); ok || err != nil {
				t.Fatalf("remove absent = %v/%v", ok, err)
			}

			// Batch spanning the shards; last-wins on duplicate keys.
			ops := []jiffy.BatchOp[uint64, uint64]{
				{Key: 1, Val: 111},
				{Key: 2, Remove: true},
				{Key: 3, Val: 999},
				{Key: 3, Val: 333},
			}
			if err := c.BatchUpdate(ops); err != nil {
				t.Fatalf("batch: %v", err)
			}
			if v, ok, _ := c.Get(1); !ok || v != 111 {
				t.Fatalf("after batch: get 1 = %d/%v, want 111", v, ok)
			}
			if _, ok, _ := c.Get(2); ok {
				t.Fatal("after batch: key 2 still present")
			}
			if v, ok, _ := c.Get(3); !ok || v != 333 {
				t.Fatalf("after batch: get 3 = %d/%v, want 333 (last wins)", v, ok)
			}

			// Snapshot session: frozen against later writes.
			snap, err := c.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			if snap.Version() <= 0 {
				t.Fatalf("snapshot version = %d, want > 0", snap.Version())
			}
			if err := c.Put(1, 7777); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := snap.Get(1); err != nil || !ok || v != 111 {
				t.Fatalf("snap get 1 = %d/%v/%v, want frozen 111", v, ok, err)
			}
			if v, ok, _ := c.Get(1); !ok || v != 7777 {
				t.Fatalf("live get 1 = %d/%v, want 7777", v, ok)
			}

			// Cursored scan over the session: multiple pages (page size 16),
			// ascending unique keys, frozen content.
			var keys []uint64
			sc := snap.ScanAll()
			for sc.Next() {
				keys = append(keys, sc.Key())
				if sc.Key() == 1 && sc.Value() != 111 {
					t.Fatalf("scan sees unfrozen value %d for key 1", sc.Value())
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatalf("scan: %v", err)
			}
			sc.Close()
			if len(keys) != n-1 { // n puts, minus key 0 removed, minus key 2 removed, plus... recount below
				// n puts (0..n-1), key 0 removed, key 2 removed by the batch.
				if len(keys) != n-2 {
					t.Fatalf("scanned %d keys, want %d", len(keys), n-2)
				}
			}
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("scan out of order: %d >= %d", keys[i-1], keys[i])
				}
			}

			// Bounded scan from a midpoint.
			sc = snap.Scan(100)
			want := uint64(100)
			for sc.Next() {
				if sc.Key() < 100 {
					t.Fatalf("Scan(100) delivered %d", sc.Key())
				}
				if sc.Key() != want {
					t.Fatalf("Scan(100): key %d, want %d", sc.Key(), want)
				}
				want++
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			sc.Close()

			if err := snap.Close(); err != nil {
				t.Fatalf("snap close: %v", err)
			}
			// Operations on the closed session report unknown-session.
			if _, _, err := snap.Get(1); err != client.ErrUnknownSnap {
				t.Fatalf("get on closed session: err = %v, want ErrUnknownSnap", err)
			}
			if err := snap.Close(); err != nil {
				t.Fatalf("second snap close: %v", err)
			}

			// Live sessionless scan sees current state.
			sc = c.Scan(0)
			seen := 0
			for sc.Next() {
				seen++
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			sc.Close()
			if seen != n-2 {
				t.Fatalf("live scan saw %d entries, want %d", seen, n-2)
			}
		})
	}
}

// TestConcurrentClients hammers one server from many goroutines across
// pooled pipelined connections under -race.
func TestConcurrentClients(t *testing.T) {
	testutil.LeakCheck(t)
	_, _, addr := startServer(t, 4, Options{})
	c := dial(t, addr, client.Options{Conns: 4})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := uint64(w) * 10000
			for i := uint64(0); i < 300; i++ {
				k := base + i
				if err := c.Put(k, k); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%7 == 0 {
					if _, _, err := c.Get(base + i/2); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				}
				if i%31 == 0 {
					ops := []jiffy.BatchOp[uint64, uint64]{
						{Key: k, Val: k * 2}, {Key: k + 1, Val: k * 2}}
					if err := c.BatchUpdate(ops); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCrossShardBatchAtomicThroughSnapScan is the wire-level atomicity
// proof the ISSUE demands: a client applies cross-shard batches that
// rewrite a band of keys to one per-batch value, while concurrent clients
// open SNAP sessions and SCAN the band. Every scan must observe every key
// carrying the same value — a mixed page would be a torn batch observed
// over the network.
func TestCrossShardBatchAtomicThroughSnapScan(t *testing.T) {
	testutil.LeakCheck(t)
	s, _, addr := startServer(t, 8, Options{})
	if s.NumShards() != 8 {
		t.Fatalf("shards = %d", s.NumShards())
	}

	const band = 64 // keys 0..63 hash across all 8 shards
	writer := dial(t, addr, client.Options{Conns: 1})
	// Seed round 0 so the first scans see a full band.
	seed := make([]jiffy.BatchOp[uint64, uint64], band)
	for k := range seed {
		seed[k] = jiffy.BatchOp[uint64, uint64]{Key: uint64(k), Val: 0}
	}
	if err := writer.BatchUpdate(seed); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var rounds atomic.Uint64
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		ops := make([]jiffy.BatchOp[uint64, uint64], band)
		for r := uint64(1); ; r++ {
			select {
			case <-stop:
				return
			default:
			}
			for k := range ops {
				ops[k] = jiffy.BatchOp[uint64, uint64]{Key: uint64(k), Val: r}
			}
			if err := writer.BatchUpdate(ops); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			rounds.Store(r)
		}
	}()

	const scanners = 3
	var swg sync.WaitGroup
	for sc := 0; sc < scanners; sc++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			c := dial(t, addr, client.Options{Conns: 1, ScanPageSize: 7}) // tiny pages: many cursor hops per snapshot
			for iter := 0; iter < 40; iter++ {
				snap, err := c.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				var vals []uint64
				scan := snap.Scan(0)
				for scan.Next() && scan.Key() < band {
					vals = append(vals, scan.Value())
				}
				if err := scan.Err(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				scan.Close()
				if len(vals) != band {
					t.Errorf("scan saw %d band keys, want %d", len(vals), band)
				}
				for i, v := range vals {
					if v != vals[0] {
						t.Errorf("torn batch over the wire: key %d has round %d, key 0 has round %d (snapshot version %d)",
							i, v, vals[0], snap.Version())
						snap.Close()
						return
					}
				}
				// Point reads through the same session agree with the scan.
				if v, ok, err := snap.Get(uint64(iter % band)); err != nil || !ok || v != vals[0] {
					t.Errorf("snap get = %d/%v/%v, want round %d", v, ok, err, vals[0])
				}
				snap.Close()
			}
		}()
	}
	swg.Wait()
	close(stop)
	wwg.Wait()
	if rounds.Load() == 0 {
		t.Fatal("writer made no progress; the test observed nothing")
	}
}

// TestIdleScanCursorDoesNotBlockReclamation is the ISSUE's slow-consumer
// proof: a client opens a SNAP session, pulls one page of a scan, and
// goes idle. Because the server's iterator lives only inside each page
// request, the idle cursor holds no epoch pin — so the reclamation epoch
// keeps advancing under concurrent write load while the session (and its
// history pin) stays open.
func TestIdleScanCursorDoesNotBlockReclamation(t *testing.T) {
	testutil.LeakCheck(t)
	s, _, addr := startServer(t, 2, Options{})
	c := dial(t, addr, client.Options{Conns: 1, ScanPageSize: 8})

	for i := uint64(0); i < 512; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	scan := snap.ScanAll()
	defer scan.Close()
	for i := 0; i < 4; i++ { // pull half a page, then stall
		if !scan.Next() {
			t.Fatal("scan dried up early")
		}
	}

	epoch0 := s.Stats().Epoch
	// Hammer updates while the cursor idles: prunes retire payloads into
	// epoch limbo, and draining limbo forces epoch advances. If the idle
	// cursor pinned an epoch server-side, the epoch could not advance.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i := uint64(0); i < 2000; i++ {
			if err := c.Put(i%512, i); err != nil {
				t.Fatal(err)
			}
		}
		if s.Stats().Epoch > epoch0+2 {
			break
		}
	}
	if e := s.Stats().Epoch; e <= epoch0+2 {
		t.Fatalf("epoch stuck at %d (started %d) while a scan cursor idled — slow consumer is blocking reclamation", e, epoch0)
	}

	// The idle cursor resumes exactly where it stopped, still frozen.
	want := uint64(4)
	for scan.Next() {
		if scan.Key() != want {
			t.Fatalf("resumed scan: key %d, want %d", scan.Key(), want)
		}
		if scan.Value() != want {
			t.Fatalf("resumed scan: value %d, want frozen %d", scan.Value(), want)
		}
		want++
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if want != 512 {
		t.Fatalf("resumed scan ended at %d, want 512", want)
	}
}

// TestSessionTTLReap checks idle sessions are reaped and later use
// reports unknown-session, while active sessions survive by being used.
func TestSessionTTLReap(t *testing.T) {
	testutil.LeakCheck(t)
	_, _, addr := startServer(t, 2, Options{SnapTTL: 80 * time.Millisecond})
	c := dial(t, addr, client.Options{Conns: 1})
	if err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}

	idle, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	busy, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Keep busy alive past several TTLs; leave idle untouched.
	for i := 0; i < 10; i++ {
		time.Sleep(40 * time.Millisecond)
		if _, _, err := busy.Get(1); err != nil {
			t.Fatalf("busy session died at iteration %d: %v", i, err)
		}
	}
	if _, _, err := idle.Get(1); err != client.ErrUnknownSnap {
		t.Fatalf("idle session: err = %v, want ErrUnknownSnap", err)
	}
	if err := busy.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idle.Close(); err != nil {
		t.Fatalf("closing a reaped session should be clean, got %v", err)
	}
}

// TestDurableStoreOverWire writes through the wire into a durable store,
// tears everything down, reopens the store and checks the data —
// including a cross-shard batch logged as one record — survived.
func TestDurableStoreOverWire(t *testing.T) {
	testutil.LeakCheck(t)
	dir := t.TempDir()
	codec := u64Codec()
	d, err := durable.OpenSharded(dir, 4, codec, durable.Options[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, NewDurableStore(d), codec, Options{})
	c, err := client.Dial(srv.Addr().String(), codec, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := c.Put(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	ops := make([]jiffy.BatchOp[uint64, uint64], 32)
	for k := range ops {
		ops[k] = jiffy.BatchOp[uint64, uint64]{Key: uint64(k), Val: 5555}
	}
	if err := c.BatchUpdate(ops); err != nil {
		t.Fatal(err)
	}
	c.Close()
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := durable.OpenSharded(dir, 4, codec, durable.Options[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := uint64(0); i < 32; i++ {
		if v, ok := re.Get(i); !ok || v != 5555 {
			t.Fatalf("recovered get %d = %d/%v, want 5555", i, v, ok)
		}
	}
	for i := uint64(32); i < 100; i++ {
		if v, ok := re.Get(i); !ok || v != i+1 {
			t.Fatalf("recovered get %d = %d/%v, want %d", i, v, ok, i+1)
		}
	}
}

// TestNoGoroutineLeak runs a full server+client lifecycle — sessions,
// scans, several connections — and asserts the goroutine count returns to
// its baseline after everything closes.
func TestNoGoroutineLeak(t *testing.T) {
	testutil.LeakCheck(t)
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := jiffy.NewSharded[uint64, uint64](4)
	srv := Serve(ln, NewMemStore(s), u64Codec(), Options{SnapTTL: time.Second})
	c, err := client.Dial(srv.Addr().String(), u64Codec(), client.Options{Conns: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sc := snap.ScanAll()
	for sc.Next() {
	}
	sc.Close()
	// Leave the session open: server Close must reap it.
	c.Close()
	srv.Close()

	// A second Close is a clean no-op.
	if err := srv.Close(); err != nil {
		t.Fatalf("second server close: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, after, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestScanPageCap checks the server clamps page sizes to MaxScanPage
// rather than building unbounded response frames.
func TestScanPageCap(t *testing.T) {
	testutil.LeakCheck(t)
	_, _, addr := startServer(t, 2, Options{MaxScanPage: 10})
	c := dial(t, addr, client.Options{Conns: 1, ScanPageSize: 100000})
	for i := uint64(0); i < 45; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	sc := c.ScanAll()
	seen := 0
	for sc.Next() {
		seen++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	if seen != 45 {
		t.Fatalf("capped scan saw %d entries, want 45 (across ceil(45/10) pages)", seen)
	}
}

// TestManyConnections exercises accept/teardown churn: many short-lived
// clients, each doing a little work.
func TestManyConnections(t *testing.T) {
	testutil.LeakCheck(t)
	_, _, addr := startServer(t, 2, Options{})
	for i := 0; i < 20; i++ {
		c, err := client.Dial(addr, u64Codec(), client.Options{Conns: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, addr, client.Options{})
	for i := 0; i < 20; i++ {
		if v, ok, err := c.Get(uint64(i)); err != nil || !ok || v != uint64(i) {
			t.Fatalf("get %d = %d/%v/%v", i, v, ok, err)
		}
	}
}

// TestScanPageByteBudget checks pages are bounded by encoded bytes as
// well as entry count: with megabyte values, a default-sized page would
// otherwise exceed the frame limit and sever the connection. The scan
// must instead split into many small-entry-count pages and still deliver
// everything exactly once.
func TestScanPageByteBudget(t *testing.T) {
	testutil.LeakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bcodec := durable.Codec[uint64, []byte]{Key: durable.Uint64Enc(), Value: durable.BytesEnc()}
	srv := Serve(ln, NewMemStore(jiffy.NewSharded[uint64, []byte](2)), bcodec, Options{})
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), bcodec, client.Options{Conns: 1, ScanPageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 24
	val := make([]byte, 1<<20) // 1 MiB per value; 24 MiB total > MaxFrameBytes
	for i := uint64(0); i < n; i++ {
		val[0] = byte(i)
		if err := c.Put(i, val); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	sc := snap.ScanAll()
	defer sc.Close()
	want := uint64(0)
	for sc.Next() {
		if sc.Key() != want {
			t.Fatalf("key %d, want %d", sc.Key(), want)
		}
		if v := sc.Value(); len(v) != 1<<20 || v[0] != byte(want) {
			t.Fatalf("value for key %d corrupted (len %d, v[0]=%d)", want, len(v), v[0])
		}
		want++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan over byte-budgeted pages: %v", err)
	}
	if want != n {
		t.Fatalf("scan delivered %d entries, want %d", want, n)
	}
}
