package server

import (
	"cmp"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// session is one server-side snapshot session: a registered store snapshot
// plus its idle clock.
type session[K cmp.Ordered, V any] struct {
	snap     Snap[K, V]
	lastUsed atomic.Int64 // unix nanos of the last operation naming it
}

func (s *session[K, V]) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// connState is the protocol engine shared by both server cores: the
// session table, the per-connection scratch buffers, and the request
// handlers. Handlers append their encoded response frame onto the dst
// slice they are given and return the extended slice — the goroutine core
// hands them a pooled buffer per request, the event-loop core its
// connection's coalescing output chunk, so execution is identical and only
// the I/O framing around it differs.
//
// Exactly one goroutine executes handlers for a given connection at a
// time (the conn's reader, or its event loop), so the scratch fields need
// no locks. The session table is additionally touched by the TTL reaper
// and by teardown, hence smu.
type connState[K cmp.Ordered, V any] struct {
	srv *Server[K, V]

	// smu guards the session table and spans any use of a session's
	// snapshot, so the TTL reaper cannot close a snapshot out from under
	// an executing request.
	smu      sync.Mutex
	sess     map[uint64]*session[K, V]
	nextSnap uint64

	// Handler scratch, reused across requests; owned by the executing
	// goroutine alone.
	kbuf  []byte // key encoding scratch
	vbuf  []byte // value encoding scratch
	batch *jiffy.Batch[K, V]

	// tctx is the request's trace context, re-armed by exec for every
	// request (same reuse discipline as the scratch buffers: exactly one
	// goroutine executes this connection's requests at a time, so tracing
	// allocates nothing per request). Store writes receive &tctx to
	// attribute their WAL time and propagate the trace ID downstream.
	tctx trace.Ctx
}

// closeSessions closes every session (connection teardown).
func (st *connState[K, V]) closeSessions() {
	st.smu.Lock()
	closed := len(st.sess)
	for id, sess := range st.sess {
		delete(st.sess, id)
		sess.snap.Close()
	}
	st.smu.Unlock()
	st.srv.metrics.sessionsOpen.Add(-int64(closed))
}

// reapSessions closes sessions idle since before deadline (unix nanos),
// reporting how many it closed.
func (st *connState[K, V]) reapSessions(deadline int64) int {
	st.smu.Lock()
	reaped := 0
	for id, sess := range st.sess {
		if sess.lastUsed.Load() < deadline {
			delete(st.sess, id)
			sess.snap.Close()
			reaped++
		}
	}
	st.smu.Unlock()
	st.srv.metrics.sessionsOpen.Add(-int64(reaped))
	return reaped
}

// lookupSess returns the named session with its idle clock touched, or
// nil. Caller must hold smu across its use of the session's snapshot.
func (st *connState[K, V]) lookupSess(snapID uint64) *session[K, V] {
	sess := st.sess[snapID]
	if sess != nil {
		sess.touch()
	}
	return sess
}

// handle executes one request and appends its encoded response frame to
// dst, returning the extended slice.
func (st *connState[K, V]) handle(dst []byte, id uint64, op byte, body []byte) []byte {
	switch op {
	case wire.OpPing:
		return okFrame(dst, id, nil)
	case wire.OpGet:
		return st.handleGet(dst, id, body)
	case wire.OpPut:
		return st.handlePut(dst, id, body)
	case wire.OpDel:
		return st.handleDel(dst, id, body)
	case wire.OpBatch:
		return st.handleBatch(dst, id, body)
	case wire.OpSnap:
		return st.handleSnap(dst, id, body)
	case wire.OpSnapClose:
		return st.handleSnapClose(dst, id, body)
	case wire.OpScan:
		return st.handleScan(dst, id, body)
	case wire.OpCluster:
		return st.handleCluster(dst, id, body)
	}
	return errFrame(dst, id, wire.StatusBadRequest, "unknown opcode")
}

// okFrame appends a StatusOK response carrying body.
func okFrame(dst []byte, id uint64, body []byte) []byte {
	return wire.AppendFrame(dst, id, wire.StatusOK, body)
}

// statusFrame appends an empty-bodied response with the given status.
func statusFrame(dst []byte, id uint64, status byte) []byte {
	return wire.AppendFrame(dst, id, status, nil)
}

// errFrame appends a failure response with a human-readable message.
func errFrame(dst []byte, id uint64, status byte, msg string) []byte {
	return wire.AppendFrame(dst, id, status, []byte(msg))
}

// verFrame appends a StatusOK response whose body is the i64 commit
// version of a write — the client folds it into its read-your-writes
// floor for replica reads.
func verFrame(dst []byte, id uint64, ver int64) []byte {
	var body [8]byte
	binary.LittleEndian.PutUint64(body[:], uint64(ver))
	return okFrame(dst, id, body[:])
}

// writeFailFrame maps a store write error to its response: a replica's
// not-promoted backstop becomes StatusReadOnly (the request raced a
// read-only flip), anything else StatusErr with the message.
func writeFailFrame(dst []byte, id uint64, prefix string, err error) []byte {
	if errors.Is(err, durable.ErrNotPromoted) {
		return statusFrame(dst, id, wire.StatusReadOnly)
	}
	return errFrame(dst, id, wire.StatusErr, prefix+": "+err.Error())
}

func (st *connState[K, V]) handleGet(dst []byte, id uint64, body []byte) []byte {
	if len(body) < 16 {
		return errFrame(dst, id, wire.StatusBadRequest, "get: short body")
	}
	snapID := binary.LittleEndian.Uint64(body[:8])
	floor := int64(binary.LittleEndian.Uint64(body[8:16]))
	if !st.srv.readOK(floor) {
		return statusFrame(dst, id, wire.StatusBehind)
	}
	key, err := st.srv.codec.Key.Decode(body[16:])
	if err != nil {
		return errFrame(dst, id, wire.StatusBadRequest, "get: "+err.Error())
	}
	var val V
	var ok bool
	if snapID == 0 {
		val, ok = st.srv.store.Get(key)
	} else {
		st.smu.Lock()
		sess := st.lookupSess(snapID)
		if sess == nil {
			st.smu.Unlock()
			return statusFrame(dst, id, wire.StatusUnknownSnap)
		}
		val, ok = sess.snap.Get(key)
		st.smu.Unlock()
	}
	if !ok {
		return statusFrame(dst, id, wire.StatusNotFound)
	}
	st.vbuf = st.srv.codec.Value.Append(st.vbuf[:0], val)
	return okFrame(dst, id, st.vbuf)
}

func (st *connState[K, V]) handlePut(dst []byte, id uint64, body []byte) []byte {
	if st.srv.fenced.Load() {
		return statusFrame(dst, id, wire.StatusFenced)
	}
	if st.srv.readOnly.Load() {
		return statusFrame(dst, id, wire.StatusReadOnly)
	}
	kb, rest, err := wire.TakeBytes(body)
	if err != nil {
		return errFrame(dst, id, wire.StatusBadRequest, "put: "+err.Error())
	}
	key, err := st.srv.codec.Key.Decode(kb)
	if err != nil {
		return errFrame(dst, id, wire.StatusBadRequest, "put: "+err.Error())
	}
	val, err := st.srv.codec.Value.Decode(rest)
	if err != nil {
		return errFrame(dst, id, wire.StatusBadRequest, "put: "+err.Error())
	}
	ver, err := st.srv.store.Put(key, val, &st.tctx)
	if err != nil {
		return writeFailFrame(dst, id, "put", err)
	}
	return verFrame(dst, id, ver)
}

func (st *connState[K, V]) handleDel(dst []byte, id uint64, body []byte) []byte {
	if st.srv.fenced.Load() {
		return statusFrame(dst, id, wire.StatusFenced)
	}
	if st.srv.readOnly.Load() {
		return statusFrame(dst, id, wire.StatusReadOnly)
	}
	key, err := st.srv.codec.Key.Decode(body)
	if err != nil {
		return errFrame(dst, id, wire.StatusBadRequest, "del: "+err.Error())
	}
	ver, ok, err := st.srv.store.Remove(key, &st.tctx)
	if err != nil {
		return writeFailFrame(dst, id, "del", err)
	}
	if !ok {
		return statusFrame(dst, id, wire.StatusNotFound)
	}
	return verFrame(dst, id, ver)
}

func (st *connState[K, V]) handleBatch(dst []byte, id uint64, body []byte) []byte {
	if st.srv.fenced.Load() {
		return statusFrame(dst, id, wire.StatusFenced)
	}
	if st.srv.readOnly.Load() {
		return statusFrame(dst, id, wire.StatusReadOnly)
	}
	if st.batch == nil {
		st.batch = jiffy.NewBatch[K, V](16)
	}
	b := st.batch.Reset()
	nops, n := binary.Uvarint(body)
	if n <= 0 {
		return errFrame(dst, id, wire.StatusBadRequest, "batch: missing op count")
	}
	p := body[n:]
	for i := uint64(0); i < nops; i++ {
		if len(p) < 1 {
			return errFrame(dst, id, wire.StatusBadRequest, "batch: truncated")
		}
		kind := p[0]
		p = p[1:]
		kb, rest, err := wire.TakeBytes(p)
		if err != nil {
			return errFrame(dst, id, wire.StatusBadRequest, "batch: "+err.Error())
		}
		p = rest
		key, err := st.srv.codec.Key.Decode(kb)
		if err != nil {
			return errFrame(dst, id, wire.StatusBadRequest, "batch: "+err.Error())
		}
		switch kind {
		case wire.BatchRemove:
			b.Remove(key)
		case wire.BatchPut:
			vb, rest, err := wire.TakeBytes(p)
			if err != nil {
				return errFrame(dst, id, wire.StatusBadRequest, "batch: "+err.Error())
			}
			p = rest
			val, err := st.srv.codec.Value.Decode(vb)
			if err != nil {
				return errFrame(dst, id, wire.StatusBadRequest, "batch: "+err.Error())
			}
			b.Put(key, val)
		default:
			return errFrame(dst, id, wire.StatusBadRequest, "batch: unknown op kind")
		}
	}
	ver, err := st.srv.store.BatchUpdate(b, &st.tctx)
	if err != nil {
		return writeFailFrame(dst, id, "batch", err)
	}
	return verFrame(dst, id, ver)
}

func (st *connState[K, V]) handleSnap(dst []byte, id uint64, body []byte) []byte {
	var floor int64
	switch len(body) {
	case 0:
	case 8:
		floor = int64(binary.LittleEndian.Uint64(body))
	default:
		return errFrame(dst, id, wire.StatusBadRequest, "snap: bad body")
	}
	if !st.srv.readOK(floor) {
		return statusFrame(dst, id, wire.StatusBehind)
	}
	snap := st.srv.store.Snapshot()
	if floor > 0 && snap.Version() < floor {
		snap.Close()
		return statusFrame(dst, id, wire.StatusBehind)
	}
	sess := &session[K, V]{snap: snap}
	sess.touch()
	st.smu.Lock()
	st.nextSnap++
	snapID := st.nextSnap
	st.sess[snapID] = sess
	st.smu.Unlock()
	st.srv.metrics.sessionsOpened.Inc()
	st.srv.metrics.sessionsOpen.Add(1)
	var resp [16]byte
	binary.LittleEndian.PutUint64(resp[0:8], snapID)
	binary.LittleEndian.PutUint64(resp[8:16], uint64(snap.Version()))
	return okFrame(dst, id, resp[:])
}

func (st *connState[K, V]) handleSnapClose(dst []byte, id uint64, body []byte) []byte {
	if len(body) != 8 {
		return errFrame(dst, id, wire.StatusBadRequest, "snap-close: short body")
	}
	snapID := binary.LittleEndian.Uint64(body)
	st.smu.Lock()
	sess := st.sess[snapID]
	if sess != nil {
		delete(st.sess, snapID)
		sess.snap.Close()
	}
	st.smu.Unlock()
	if sess == nil {
		return statusFrame(dst, id, wire.StatusUnknownSnap)
	}
	st.srv.metrics.sessionsOpen.Add(-1)
	return okFrame(dst, id, nil)
}

// handleCluster answers a topology/role inquiry and absorbs the caller's
// epoch announcement. The response is the Cluster hook's ClusterInfo (or
// a synthesized members-less one), with the role corrected to RoleFenced
// while the fence flag is up. An announced epoch above the node's own is
// forwarded to OnPeerEpoch — this is how a client that has already found
// the new primary fences a stale one it still has a connection to.
func (st *connState[K, V]) handleCluster(dst []byte, id uint64, body []byte) []byte {
	srv := st.srv
	if len(body) >= 8 {
		if known := int64(binary.LittleEndian.Uint64(body)); known > srv.epoch() && srv.opts.OnPeerEpoch != nil {
			srv.opts.OnPeerEpoch(known)
		}
	}
	var ci wire.ClusterInfo
	if srv.opts.Cluster != nil {
		ci = srv.opts.Cluster()
	} else {
		ci = wire.ClusterInfo{Epoch: srv.epoch(), Role: wire.RolePrimary}
		if wm := srv.opts.Watermark; wm != nil {
			ci.Watermark = wm()
		}
		if srv.readOnly.Load() {
			ci.Role = wire.RoleReplica
		}
	}
	if srv.fenced.Load() {
		ci.Role = wire.RoleFenced
	}
	st.vbuf = wire.AppendClusterInfo(st.vbuf[:0], ci)
	return okFrame(dst, id, st.vbuf)
}

// handleScan delivers one cursored page. The iterator lives only inside
// this request: a slow or stalled client pins no iterator state, no epoch
// and no server buffer between pages — just the session's snapshot
// registration, which the TTL reaper bounds.
func (st *connState[K, V]) handleScan(dst []byte, id uint64, body []byte) []byte {
	start := len(dst) // truncate back here if the page must become an error
	if len(body) < 21 {
		return errFrame(dst, id, wire.StatusBadRequest, "scan: short body")
	}
	snapID := binary.LittleEndian.Uint64(body[0:8])
	floor := int64(binary.LittleEndian.Uint64(body[8:16]))
	maxEntries := int(binary.LittleEndian.Uint32(body[16:20]))
	mode := body[20]
	rest := body[21:]
	if !st.srv.readOK(floor) {
		return statusFrame(dst, id, wire.StatusBehind)
	}
	var cursor K
	if mode == wire.ScanInclusive || mode == wire.ScanExclusive {
		kb, r2, err := wire.TakeBytes(rest)
		if err != nil {
			return errFrame(dst, id, wire.StatusBadRequest, "scan: "+err.Error())
		}
		rest = r2
		cursor, err = st.srv.codec.Key.Decode(kb)
		if err != nil {
			return errFrame(dst, id, wire.StatusBadRequest, "scan: "+err.Error())
		}
	} else if mode != wire.ScanFromStart {
		return errFrame(dst, id, wire.StatusBadRequest, "scan: unknown cursor mode")
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxEntries > st.srv.opts.MaxScanPage {
		maxEntries = st.srv.opts.MaxScanPage
	}

	var snap Snap[K, V]
	if snapID == 0 {
		// Sessionless page: an ephemeral snapshot for this page only.
		snap = st.srv.store.Snapshot()
		defer snap.Close()
	} else {
		st.smu.Lock()
		defer st.smu.Unlock()
		sess := st.lookupSess(snapID)
		if sess == nil {
			return statusFrame(dst, id, wire.StatusUnknownSnap)
		}
		snap = sess.snap
	}
	if floor > 0 && snap.Version() < floor {
		return statusFrame(dst, id, wire.StatusBehind)
	}

	it := snap.Iter()
	defer it.Close()
	if mode != wire.ScanFromStart {
		it.Seek(cursor)
	}
	resp, lenAt := wire.BeginFrame(dst, id, wire.StatusOK)
	moreAt := len(resp)
	resp = append(resp, 0) // more flag, patched below
	countAt := len(resp)
	resp = append(resp, 0, 0, 0, 0) // u32 count, patched below
	count := 0
	pageStart := len(resp)
	truncated := false
	for count < maxEntries && it.Next() {
		k := it.Key()
		if mode == wire.ScanExclusive && count == 0 && k == cursor {
			continue // the cursor key itself: delivered by the previous page
		}
		st.kbuf = st.srv.codec.Key.Append(st.kbuf[:0], k)
		st.vbuf = st.srv.codec.Value.Append(st.vbuf[:0], it.Value())
		entryBytes := len(st.kbuf) + len(st.vbuf) + 16 // two uvarint prefixes, generously
		if count > 0 && len(resp)-pageStart+entryBytes > maxScanPageBytes {
			// The page is bounded by bytes as well as entries, so large
			// values cannot push a frame past the protocol limit. The
			// entry stays unsent; the client's cursor resumes on it.
			truncated = true
			break
		}
		if len(resp)-start+entryBytes > wire.MaxFrameBytes-64 {
			// A single entry too big for any frame (a value put near the
			// frame limit gains a key and length prefixes on the way
			// out): unservable by this protocol, and silently dropping it
			// would corrupt the scan. Report it instead of building a
			// frame the client must reject.
			return errFrame(resp[:start], id, wire.StatusErr, "scan: entry exceeds the protocol frame limit")
		}
		resp = wire.AppendBytes(resp, st.kbuf)
		resp = wire.AppendBytes(resp, st.vbuf)
		count++
	}
	if truncated || (count == maxEntries && it.Next()) {
		resp[moreAt] = 1
	}
	binary.LittleEndian.PutUint32(resp[countAt:], uint32(count))
	return wire.EndFrame(resp, lenAt)
}
