package server

import (
	"cmp"
	"encoding/binary"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/netpoll"
	"repro/internal/wire"
)

// This file is the event-loop core (ModeEventLoop): N loops, each a
// single goroutine multiplexing its share of the connections through one
// netpoll.Poller. The acceptor (accept.go) distributes connections
// round-robin; a loop reads request bytes in bulk, decodes complete
// frames in place, executes them inline on the store's lock-free paths,
// and coalesces the responses into batched writev flushes (flush.go).
// Inline execution means a loop never pays a per-request goroutine wakeup
// — the cycles BENCH_0005 showed the goroutine core burning — and
// response coalescing amortizes exactly like WAL group commit: by the
// time a flush runs, every request that arrived in the same readiness
// burst has its response queued. See DESIGN.md §9.

const (
	// readBudget bounds how many bytes one connection may consume per
	// readiness burst before the loop moves on: level-triggered polling
	// re-reports the leftover, so a fire-hosing client cannot starve its
	// loop neighbors.
	readBudget = 256 << 10

	// inBufInit and inBufShrink size a connection's input buffer: start
	// small, grow to the largest in-flight frame, shrink back once a
	// burst's oversized buffer drains so idle connections do not pin
	// megabytes.
	inBufInit   = 16 << 10
	inBufShrink = 256 << 10
)

// elConn is one event-loop connection. Every field except the session
// table inside st (guarded by st.smu) is owned by the loop goroutine
// after registration; the registration itself is published through
// loop.mu.
type elConn[K cmp.Ordered, V any] struct {
	st   connState[K, V]
	l    *loop[K, V]
	fd   int
	file *os.File // keeps the dup'd fd alive; Close tears it down

	in    []byte // buffered input; undecoded window is in[inOff:]
	inOff int
	out   outBuf

	wantR  bool // epoll read interest currently registered
	wantW  bool // epoll write interest currently registered
	paused bool // reading suspended by output backpressure
	dirty  bool // queued on l.dirtyq for an end-of-wake flush
	closed bool // torn down (loop-local)

	closeReq atomic.Bool // external close request (Server.Close / sever)
}

// sever requests teardown from outside the loop goroutine: closing the fd
// directly would race the loop's I/O on it, so the request is flagged and
// the loop told to look.
func (c *elConn[K, V]) sever() {
	c.closeReq.Store(true)
	c.l.p.Wake()
}

// reapSessions forwards to the shared session table.
func (c *elConn[K, V]) reapSessions(deadline int64) int { return c.st.reapSessions(deadline) }

// loop is one event loop: a poller, the connections registered on it, and
// the scratch the loop goroutine reuses across wakes.
type loop[K cmp.Ordered, V any] struct {
	srv *Server[K, V]
	p   *netpoll.Poller

	// mu guards conns and stopped: the acceptor registers new
	// connections while the loop runs.
	mu      sync.Mutex
	conns   map[int]*elConn[K, V]
	stopped bool

	evs    []netpoll.Event
	dirtyq []*elConn[K, V]
	iov    [][]byte
	dead   []*os.File // fds of conns torn down this wake; closed at wake end
}

func newLoop[K cmp.Ordered, V any](s *Server[K, V]) (*loop[K, V], error) {
	p, err := netpoll.New()
	if err != nil {
		return nil, err
	}
	return &loop[K, V]{
		srv:   s,
		p:     p,
		conns: map[int]*elConn[K, V]{},
		evs:   make([]netpoll.Event, 128),
	}, nil
}

// register adopts c onto this loop. It fails once the loop has begun
// shutting down, in which case the caller owns the cleanup.
func (l *loop[K, V]) register(c *elConn[K, V]) error {
	c.wantR = true // published by l.mu below; loop-owned thereafter
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrServerClosed
	}
	l.conns[c.fd] = c
	l.mu.Unlock()
	if err := l.p.Add(c.fd, true, false); err != nil {
		l.mu.Lock()
		delete(l.conns, c.fd)
		l.mu.Unlock()
		return err
	}
	return nil
}

func (l *loop[K, V]) lookup(fd int) *elConn[K, V] {
	l.mu.Lock()
	c := l.conns[fd]
	l.mu.Unlock()
	return c
}

// run is the loop goroutine: wait for readiness, service every ready
// connection (writes first — draining a blocked socket may unpause its
// reads), then flush everything that produced output this wake.
func (l *loop[K, V]) run() {
	defer l.srv.wg.Done()
	m := l.srv.metrics
	for {
		n, woken, err := l.p.Wait(l.evs)
		m.loopWakeups.Inc()
		if err != nil {
			// A failing poller is unrecoverable for this loop (EBADF
			// after an external close): tear everything down rather than
			// spin.
			l.srv.logf("jiffyd: event loop poll: %v", err)
			l.shutdown()
			return
		}
		if woken {
			if l.srv.closing() {
				l.shutdown()
				return
			}
			l.sweepCloseRequests()
		}
		for i := 0; i < n; i++ {
			ev := l.evs[i]
			c := l.lookup(ev.FD)
			if c == nil || c.closed {
				continue
			}
			if ev.Writable {
				l.flush(c)
			}
			if ev.Readable && !c.closed {
				if !c.paused {
					l.readable(c)
				} else if ev.Hup {
					// Reads are paused, so the hangup will never surface
					// as a read result; level-triggered polling would
					// re-report it every wake (a busy spin) if ignored.
					// Tear down here instead — this is why evbits always
					// registers EPOLLRDHUP.
					l.teardown(c)
				}
			}
		}
		if len(l.dirtyq) > 0 {
			m.dirtyqDepth.Observe(float64(len(l.dirtyq)))
		}
		// By index, re-reading len each step: flush can unpause a
		// connection and run processFrames, which appends to dirtyq
		// mid-pass — a range over the initial slice header would drop
		// those entries with dirty still set, wedging the connection.
		for i := 0; i < len(l.dirtyq); i++ {
			c := l.dirtyq[i]
			c.dirty = false
			if !c.closed {
				l.flush(c)
			}
		}
		clear(l.dirtyq)
		l.dirtyq = l.dirtyq[:0]
		l.closeDead()
	}
}

// shutdown tears down every connection and releases the poller. New
// registrations are refused from here on.
func (l *loop[K, V]) shutdown() {
	l.mu.Lock()
	l.stopped = true
	conns := make([]*elConn[K, V], 0, len(l.conns))
	for _, c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		l.teardown(c)
	}
	l.closeDead()
	l.p.Close()
}

// sweepCloseRequests tears down connections flagged by sever.
func (l *loop[K, V]) sweepCloseRequests() {
	l.mu.Lock()
	var victims []*elConn[K, V]
	for _, c := range l.conns {
		if c.closeReq.Load() {
			victims = append(victims, c)
		}
	}
	l.mu.Unlock()
	for _, c := range victims {
		l.teardown(c)
	}
}

// teardown closes c: sessions released, fd deregistered and closed, the
// server's registry updated. Loop-goroutine only (or loop shutdown).
func (l *loop[K, V]) teardown(c *elConn[K, V]) {
	if c.closed {
		return
	}
	c.closed = true
	c.st.closeSessions()
	l.srv.metrics.conns.Add(-1)
	if c.paused {
		l.srv.metrics.connsPaused.Add(-1)
	}
	l.mu.Lock()
	delete(l.conns, c.fd)
	l.mu.Unlock()
	l.p.Del(c.fd)
	// Deregister now, close later (closeDead): while the fd stays open the
	// kernel cannot hand its number to a new connection, so events still
	// sitting in this wake's batch can never be misdelivered to an
	// acceptor-registered successor with a reused fd.
	l.dead = append(l.dead, c.file)
	c.out.release()
	c.in = nil
	l.srv.forget(c)
}

// closeDead closes the fds of connections torn down during this wake.
func (l *loop[K, V]) closeDead() {
	for i, f := range l.dead {
		f.Close()
		l.dead[i] = nil
	}
	l.dead = l.dead[:0]
}

// markDirty queues c for the end-of-wake flush pass.
func (l *loop[K, V]) markDirty(c *elConn[K, V]) {
	if !c.dirty {
		c.dirty = true
		l.dirtyq = append(l.dirtyq, c)
	}
}

// setInterest reconciles c's epoll registration with the wanted state,
// skipping the syscall when nothing changed.
func (l *loop[K, V]) setInterest(c *elConn[K, V], read, write bool) {
	if c.closed || (c.wantR == read && c.wantW == write) {
		return
	}
	c.wantR, c.wantW = read, write
	if err := l.p.Mod(c.fd, read, write); err != nil {
		l.teardown(c)
	}
}

// readable drains c's socket into its input buffer and executes the
// complete frames, within the fairness budget. Level-triggered polling
// re-reports anything left unread.
func (l *loop[K, V]) readable(c *elConn[K, V]) {
	budget := readBudget
	for budget > 0 && !c.paused {
		l.ensureInSpace(c)
		space := cap(c.in) - len(c.in)
		n, err := netpoll.Read(c.fd, c.in[len(c.in):cap(c.in)])
		if err == netpoll.ErrAgain {
			return
		}
		if err != nil {
			// Peer close or socket error. Frames decoded before this
			// point have executed and their responses flush below; the
			// partial tail dies with the connection, as it would on the
			// goroutine core.
			l.teardown(c)
			return
		}
		c.in = c.in[:len(c.in)+n]
		budget -= n
		l.srv.metrics.bytesIn.Add(uint64(n))
		if !l.processFrames(c) {
			return
		}
		if n < space {
			// A partial read almost always means the socket is drained:
			// stop here instead of paying a confirming EAGAIN read.
			// Level-triggered polling re-reports the fd in the rare case
			// data arrived between the read and the next Wait.
			return
		}
	}
}

// ensureInSpace guarantees read headroom in c.in, compacting the decoded
// prefix away and growing geometrically when a frame outgrows the buffer.
func (l *loop[K, V]) ensureInSpace(c *elConn[K, V]) {
	if c.in == nil {
		c.in = make([]byte, 0, inBufInit)
	}
	if c.inOff > 0 {
		n := copy(c.in, c.in[c.inOff:])
		c.in = c.in[:n]
		c.inOff = 0
	}
	if cap(c.in)-len(c.in) < 4<<10 {
		newCap := 2 * cap(c.in)
		if newCap < inBufInit {
			newCap = inBufInit
		}
		grown := make([]byte, len(c.in), newCap)
		copy(grown, c.in)
		c.in = grown
	}
}

// ensureInCapacity grows c.in to hold a frame of total bytes.
func (c *elConn[K, V]) ensureInCapacity(total int) {
	if cap(c.in)-c.inOff >= total {
		return
	}
	grown := make([]byte, len(c.in)-c.inOff, total)
	copy(grown, c.in[c.inOff:])
	c.in = grown
	c.inOff = 0
}

// processFrames decodes and executes every complete frame buffered in
// c.in, appending responses to c.out. Returns false when the connection
// was torn down (protocol violation). Execution stops early when output
// backpressure pauses the connection; the undecoded input stays buffered.
func (l *loop[K, V]) processFrames(c *elConn[K, V]) bool {
	for !c.paused {
		buf := c.in[c.inOff:]
		if len(buf) < 4 {
			break
		}
		n := binary.LittleEndian.Uint32(buf)
		if n < wire.FrameOverhead || n > wire.MaxFrameBytes {
			// Protocol corruption: sever, exactly as wire.ReadFrame would
			// have the goroutine core do.
			l.teardown(c)
			return false
		}
		total := 4 + int(n)
		if len(buf) < total {
			c.ensureInCapacity(total)
			break
		}
		id := binary.LittleEndian.Uint64(buf[4:12])
		op := buf[12]
		body := buf[13:total]
		dst := c.out.active()
		pre := len(dst)
		dst = c.st.exec(dst, id, op, body)
		c.out.appended(dst, pre)
		c.inOff += total
		l.markDirty(c)
		if c.out.bytes > outHighWater {
			// The client is not reading: stop consuming its requests
			// until the backlog drains (flush.go resumes us).
			c.paused = true
			l.srv.metrics.pauses.Inc()
			l.srv.metrics.connsPaused.Add(1)
			l.setInterest(c, false, true)
		}
	}
	if c.inOff == len(c.in) {
		// Fully decoded: reset, and drop an oversized buffer a burst or a
		// big frame left behind.
		if cap(c.in) > inBufShrink {
			c.in = make([]byte, 0, inBufInit)
		} else {
			c.in = c.in[:0]
		}
		c.inOff = 0
	}
	return true
}
