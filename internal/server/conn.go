package server

import (
	"cmp"
	"net"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// This file is the goroutine-per-connection core (ModeGoroutine): the
// original serving path, kept while the event-loop core (loop.go) proves
// parity, and as the portable fallback where netpoll is unsupported.
//
// Every connection runs two goroutines, mirroring the WAL's group-commit
// split (internal/persist): a reader that decodes request frames and
// executes them inline against the store, and a writer that coalesces the
// resulting response frames into as few socket writes as possible.

// respPool recycles response frame buffers between a conn's reader (which
// encodes into them) and its writer (which releases them after copying
// into the coalescing buffer). Buffers grown past maxPooledRespBytes by a
// large scan page are dropped instead of pooled, so one big scan does not
// pin multi-megabyte backing arrays behind every future ping.
const maxPooledRespBytes = 64 << 10

var respPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getResp() []byte { return (*(respPool.Get().(*[]byte)))[:0] }
func putResp(b []byte) {
	if cap(b) > maxPooledRespBytes {
		return
	}
	respPool.Put(&b)
}

// conn is one goroutine-core client connection: the reader goroutine
// (readLoop) executes requests and queues encoded responses on out; the
// writer goroutine (writeLoop) coalesces them onto the socket.
type conn[K cmp.Ordered, V any] struct {
	st  connState[K, V]
	c   net.Conn
	out chan []byte

	rbuf []byte // frame read buffer, reader-goroutine scratch
}

// sever closes the socket, unblocking the reader, which tears the
// connection down.
func (c *conn[K, V]) sever() { c.c.Close() }

// reapSessions forwards to the shared session table.
func (c *conn[K, V]) reapSessions(deadline int64) int { return c.st.reapSessions(deadline) }

// spawnConn registers nc as a goroutine-core connection and starts its
// reader and writer. Used by ModeGoroutine for every connection, and by
// the event-loop acceptor for connections whose fd cannot be extracted.
// Returns false when the server is already closed (nc is closed too).
func (s *Server[K, V]) spawnConn(nc net.Conn) bool {
	c := &conn[K, V]{
		st:  connState[K, V]{srv: s, sess: map[uint64]*session[K, V]{}},
		c:   nc,
		out: make(chan []byte, 256),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return false
	}
	s.conns[c] = struct{}{}
	s.wg.Add(2)
	s.mu.Unlock()
	s.metrics.connsTotal.Inc()
	s.metrics.conns.Add(1)
	go c.readLoop()
	go c.writeLoop()
	return true
}

// readLoop decodes and executes request frames until the connection
// drops, then tears the connection down: sessions close, the writer
// drains and exits, the server forgets the conn.
func (c *conn[K, V]) readLoop() {
	defer c.st.srv.wg.Done()
	m := c.st.srv.metrics
	for {
		id, op, body, buf, err := wire.ReadFrame(c.c, c.rbuf)
		c.rbuf = buf
		if err != nil {
			break
		}
		m.bytesIn.Add(uint64(4 + wire.FrameOverhead + len(body)))
		c.out <- c.st.exec(getResp(), id, op, body)
	}
	// Teardown. Closing the socket unblocks nothing here (the read
	// already failed) but stops the writer's Write calls from lingering.
	c.c.Close()
	c.st.closeSessions()
	close(c.out)
	c.st.srv.forget(c)
	m.conns.Add(-1)
}

// writeLoop coalesces response frames: one blocking receive, then a
// non-blocking drain of everything else already queued, one Write for the
// lot — the group-commit idiom, with the socket in the role of the log
// file. Exits when the reader closes out.
func (c *conn[K, V]) writeLoop() {
	defer c.st.srv.wg.Done()
	var wbuf []byte
	broken := false
	for f := range c.out {
		wbuf = append(wbuf[:0], f...)
		putResp(f)
	drain:
		for len(wbuf) < 256<<10 {
			select {
			case f, ok := <-c.out:
				if !ok {
					break drain
				}
				wbuf = append(wbuf, f...)
				putResp(f)
			default:
				break drain
			}
		}
		if !broken {
			tr := c.st.srv.opts.Tracer
			var fstart time.Time
			if tr != nil {
				fstart = time.Now()
			}
			if _, err := c.c.Write(wbuf); err == nil {
				if tr != nil {
					// Batch-level flush span (trace ID 0), as in the
					// event-loop core's writev path.
					tr.Record(trace.StageFlush, 0, 0, fstart, time.Since(fstart), int64(len(wbuf)))
				}
				c.st.srv.metrics.bytesOut.Add(uint64(len(wbuf)))
			} else {
				// Sever the connection so the reader unblocks; keep
				// draining out so the reader never blocks sending to it.
				broken = true
				c.c.Close()
			}
		}
	}
}
