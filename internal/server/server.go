// Package server implements jiffyd's serving layer: a TCP server speaking
// the length-prefixed binary protocol of internal/wire over any Store (the
// in-memory or durable sharded jiffy frontends).
//
// The server has two interchangeable cores sharing one protocol engine
// (state.go). The default event-loop core (loop.go, flush.go) runs N
// sharded event loops: an acceptor distributes connections round-robin,
// each loop multiplexes its share through readiness polling
// (internal/netpoll — epoll on Linux), reads request bytes in bulk,
// executes complete frames inline on the store's lock-free paths, and
// coalesces responses into batched writev flushes. The goroutine core
// (conn.go) runs a reader and a coalescing writer goroutine per
// connection; it is the portable fallback where netpoll is unsupported and
// the parity baseline everywhere else. Options.Mode (or the
// JIFFY_SERVE_MODE environment variable) selects.
//
// Requests on one connection execute in arrival order (responses are
// matched by id, so clients need not rely on it); requests on different
// connections execute concurrently with no server-wide locks — the
// store's own lock-free paths are the only synchronization.
//
// Snapshot sessions (OpSnap) register a store snapshot server-side and
// hand the client its id; subsequent OpGet/OpScan against the id read the
// frozen version. Sessions are owned by the connection that opened them —
// they die with it — and are reaped when idle longer than Options.SnapTTL,
// so an abandoned session cannot pin multiversion history forever. Scans
// are cursored: each OpScan request delivers one bounded page through a
// jiffy.Iterator that is opened and closed within the request, so a client
// that stalls mid-scan holds no iterator, no epoch pin and no buffer on
// the server — only the session's snapshot registration (or nothing, for
// sessionless scans). See DESIGN.md §8 and §9.
package server

import (
	"cmp"
	"errors"
	"log/slog"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netpoll"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/jiffy/durable"
)

// ErrServerClosed is returned when a connection arrives at a server that
// has begun shutting down.
var ErrServerClosed = errors.New("server: closed")

// Mode selects a serving core.
type Mode int

const (
	// ModeAuto resolves through the JIFFY_SERVE_MODE environment variable
	// ("eventloop" or "goroutine"); unset or unrecognized, it means
	// ModeEventLoop where netpoll is supported and ModeGoroutine elsewhere.
	ModeAuto Mode = iota
	// ModeEventLoop serves with N sharded event loops (loop.go). Falls
	// back to ModeGoroutine where netpoll is unsupported.
	ModeEventLoop
	// ModeGoroutine serves with two goroutines per connection (conn.go).
	ModeGoroutine
)

func (m Mode) String() string {
	switch m {
	case ModeEventLoop:
		return "eventloop"
	case ModeGoroutine:
		return "goroutine"
	}
	return "auto"
}

// ParseMode maps a mode name ("auto", "eventloop", "goroutine") to its
// Mode. Unrecognized names mean ModeAuto.
func ParseMode(s string) Mode {
	switch s {
	case "eventloop", "event-loop", "loop":
		return ModeEventLoop
	case "goroutine", "goroutines", "threaded":
		return ModeGoroutine
	}
	return ModeAuto
}

// resolve turns a Mode into the concrete core to run, consulting the
// environment for ModeAuto and the platform for event-loop support.
func (m Mode) resolve() Mode {
	if m == ModeAuto {
		m = ParseMode(os.Getenv("JIFFY_SERVE_MODE"))
		if m == ModeAuto {
			m = ModeEventLoop
		}
	}
	if m == ModeEventLoop && !netpoll.Supported() {
		m = ModeGoroutine
	}
	return m
}

// Options tunes a Server. The zero value selects defaults.
type Options struct {
	// SnapTTL is how long an idle snapshot session lives before the
	// reaper closes it (default 30s). Every operation naming the session
	// resets its idle clock.
	SnapTTL time.Duration

	// MaxScanPage caps the entries one OpScan request may ask for
	// (default 4096): a page must fit one response frame and one
	// iterator hold.
	MaxScanPage int

	// Mode selects the serving core; see Mode. Default ModeAuto.
	Mode Mode

	// Loops is the number of event loops in ModeEventLoop (default
	// GOMAXPROCS, capped at 8). Ignored by ModeGoroutine.
	Loops int

	// Logf, when non-nil, receives connection-level diagnostics
	// (accept/teardown errors, reaper activity). The data path never logs.
	Logf func(format string, args ...any)

	// Registry, when non-nil, receives the server's metrics (see
	// metrics.go) for exposition. When nil the server instruments into a
	// private registry: the hot path is identical either way, so turning
	// the endpoint on never changes what the benchmarks measured.
	Registry *obs.Registry

	// Watermark, when non-nil, reports the store's replicated watermark:
	// reads carrying a version floor answer StatusBehind when the
	// watermark has not reached it, and a never-synced store (watermark
	// 0) serves no reads at all. Nil means the store is a primary —
	// every acked write is locally visible, so floors are trivially
	// satisfied and not checked.
	Watermark func() int64

	// ReadOnly starts the server refusing writes with StatusReadOnly
	// (replica serving). Promotion flips it off with SetReadOnly.
	ReadOnly bool

	// Epoch, when non-nil, reports the node's fencing epoch (see
	// DESIGN.md §12) for OpCluster responses and for judging client
	// epoch announcements. Nil reports epoch 0: an epoch-unaware
	// deployment, which no announcement can fence.
	Epoch func() int64

	// Cluster, when non-nil, supplies the OpCluster response — the
	// node's role, epoch, watermark and fleet member list. Nil makes the
	// server synthesize a members-less ClusterInfo from Epoch, Watermark
	// and the read-only/fenced flags, enough for a client to learn the
	// node's role and epoch but not to discover its peers.
	Cluster func() wire.ClusterInfo

	// OnPeerEpoch, when non-nil, is called when an OpCluster request
	// announces a fencing epoch HIGHER than this node's own — evidence
	// that a newer primary exists somewhere. The hook decides what to do
	// with it (a primary fences itself; a replica lets its failover
	// detector repoint). Called from request handlers: it must not block.
	OnPeerEpoch func(epoch int64)

	// Tracer, when non-nil, receives a span per request at the exec seam
	// (plus flush spans from both cores) and is threaded into store
	// writes for WAL attribution; see internal/trace. Nil disables
	// tracing entirely — the cost is one predicted branch per request.
	Tracer *trace.Recorder

	// TraceSlow, when positive, logs one structured line (via TraceLog)
	// for every request whose service time crosses it, with the
	// per-stage breakdown from the request's trace context.
	TraceSlow time.Duration

	// TraceLog receives the slow-request lines. Nil disables them even
	// when TraceSlow is set.
	TraceLog *slog.Logger
}

// maxScanPageBytes caps the encoded size of one scan page, comfortably
// inside wire.MaxFrameBytes, so entry-count limits cannot produce frames
// the peer must reject.
const maxScanPageBytes = 4 << 20

func (o Options) withDefaults() Options {
	if o.SnapTTL <= 0 {
		o.SnapTTL = 30 * time.Second
	}
	if o.MaxScanPage <= 0 {
		o.MaxScanPage = 4096
	}
	return o
}

// serverConn is a registered connection of either core, as the server's
// registry, reaper and Close see it.
type serverConn interface {
	sever() // request asynchronous teardown
	// reapSessions closes sessions idle since before deadline and
	// reports how many it closed.
	reapSessions(deadline int64) int
}

// Server serves one Store over one listener. Create it with Serve; stop it
// with Close.
type Server[K cmp.Ordered, V any] struct {
	store   Store[K, V]
	codec   durable.Codec[K, V]
	opts    Options
	ln      net.Listener
	mode    Mode
	metrics *metrics
	loops   []*loop[K, V] // event-loop core only

	readOnly atomic.Bool
	fenced   atomic.Bool

	mu     sync.Mutex
	conns  map[serverConn]struct{}
	closed bool

	stopReaper chan struct{}
	wg         sync.WaitGroup // accept loop + reaper + per-conn goroutines or event loops
}

// Serve starts serving store on ln with codec translating keys and values
// to and from their wire form. It returns immediately; Close stops the
// server and joins every goroutine it started.
func Serve[K cmp.Ordered, V any](ln net.Listener, store Store[K, V], codec durable.Codec[K, V], opts Options) *Server[K, V] {
	s := &Server[K, V]{
		store:      store,
		codec:      codec,
		opts:       opts.withDefaults(),
		ln:         ln,
		conns:      map[serverConn]struct{}{},
		stopReaper: make(chan struct{}),
	}
	reg := s.opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.metrics = newMetrics(reg)
	s.readOnly.Store(s.opts.ReadOnly)
	s.mode = s.opts.Mode.resolve()
	if s.mode == ModeEventLoop {
		if err := s.startLoops(); err != nil {
			// Poller setup failed (fd exhaustion, seccomp): fall back to
			// the portable core rather than refuse to serve.
			s.logf("jiffyd: event loops unavailable (%v), serving with goroutine core", err)
			s.mode = ModeGoroutine
		}
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reapLoop()
	return s
}

// Mode reports the serving core actually in use (never ModeAuto).
func (s *Server[K, V]) Mode() Mode { return s.mode }

// SetReadOnly flips whether writes answer StatusReadOnly. Promotion
// calls SetReadOnly(false) after the store accepts writes; requests
// already executing race the flip harmlessly — the store's own
// not-promoted backstop maps to the same status.
func (s *Server[K, V]) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// IsReadOnly reports whether writes currently answer StatusReadOnly.
func (s *Server[K, V]) IsReadOnly() bool { return s.readOnly.Load() }

// SetFenced flips whether writes answer StatusFenced — set when the node
// has observed a fencing epoch above its own and must surrender primacy.
// Fenced outranks read-only: a fenced ex-primary tells clients to
// rediscover the fleet, not merely that it is a replica.
func (s *Server[K, V]) SetFenced(f bool) { s.fenced.Store(f) }

// IsFenced reports whether writes currently answer StatusFenced.
func (s *Server[K, V]) IsFenced() bool { return s.fenced.Load() }

// epoch reports the node's fencing epoch (0 when unconfigured).
func (s *Server[K, V]) epoch() int64 {
	if s.opts.Epoch != nil {
		return s.opts.Epoch()
	}
	return 0
}

// readOK reports whether a read carrying the given version floor may be
// served here. On a primary (no Watermark hook) every floor is
// satisfied: writes commit locally before they are acked. On a replica
// the replicated watermark must have reached the floor, and a
// never-synced replica (watermark 0) serves nothing — it holds no state
// a client could correctly observe.
func (s *Server[K, V]) readOK(floor int64) bool {
	wm := s.opts.Watermark
	if wm == nil {
		return true
	}
	w := wm()
	return w != 0 && floor <= w
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server[K, V]) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, severs every connection (closing their snapshot
// sessions) and joins all server goroutines. It is idempotent; operations
// in flight when it is called may or may not be applied, exactly as if the
// connection had dropped.
func (s *Server[K, V]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	close(s.stopReaper)
	for _, c := range conns {
		c.sever()
	}
	// Wake every loop so it observes closing() and shuts down even with
	// no connections registered.
	for _, l := range s.loops {
		l.p.Wake()
	}
	s.wg.Wait()
	return err
}

// closing reports whether Close has begun.
func (s *Server[K, V]) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// forget removes a torn-down connection from the registry.
func (s *Server[K, V]) forget(c serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// logf forwards to Options.Logf when set.
func (s *Server[K, V]) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// reapLoop closes snapshot sessions idle longer than SnapTTL.
func (s *Server[K, V]) reapLoop() {
	defer s.wg.Done()
	tick := s.opts.SnapTTL / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stopReaper:
			return
		case <-t.C:
		}
		s.mu.Lock()
		conns := make([]serverConn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		deadline := time.Now().Add(-s.opts.SnapTTL).UnixNano()
		reaped := 0
		for _, c := range conns {
			reaped += c.reapSessions(deadline)
		}
		if reaped > 0 {
			s.metrics.sessionsReaped.Add(uint64(reaped))
			s.logf("jiffyd: reaped %d idle snapshot session(s)", reaped)
		}
	}
}
