// Package server implements jiffyd's serving layer: a TCP server speaking
// the length-prefixed binary protocol of internal/wire over any Store (the
// in-memory or durable sharded jiffy frontends).
//
// Every connection runs two goroutines, mirroring the WAL's group-commit
// split (internal/persist): a reader that decodes request frames and
// executes them inline against the store, and a writer that coalesces the
// resulting response frames into as few socket writes as possible. A
// pipelining client keeps many requests in flight, so by the time the
// writer drains its queue there are usually several responses ready — they
// leave in one write() the same way concurrent WAL appends leave in one
// fsync. Requests on one connection execute in arrival order (responses
// are matched by id, so clients need not rely on it); requests on
// different connections execute concurrently with no server-wide locks —
// the store's own lock-free paths are the only synchronization.
//
// Snapshot sessions (OpSnap) register a store snapshot server-side and
// hand the client its id; subsequent OpGet/OpScan against the id read the
// frozen version. Sessions are owned by the connection that opened them —
// they die with it — and are reaped when idle longer than Options.SnapTTL,
// so an abandoned session cannot pin multiversion history forever. Scans
// are cursored: each OpScan request delivers one bounded page through a
// jiffy.Iterator that is opened and closed within the request, so a client
// that stalls mid-scan holds no iterator, no epoch pin and no buffer on
// the server — only the session's snapshot registration (or nothing, for
// sessionless scans). See DESIGN.md §8.
package server

import (
	"cmp"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// Options tunes a Server. The zero value selects defaults.
type Options struct {
	// SnapTTL is how long an idle snapshot session lives before the
	// reaper closes it (default 30s). Every operation naming the session
	// resets its idle clock.
	SnapTTL time.Duration

	// MaxScanPage caps the entries one OpScan request may ask for
	// (default 4096): a page must fit one response frame and one
	// iterator hold.
	MaxScanPage int

	// Logf, when non-nil, receives connection-level diagnostics
	// (accept/teardown errors). The data path never logs.
	Logf func(format string, args ...any)
}

// maxScanPageBytes caps the encoded size of one scan page, comfortably
// inside wire.MaxFrameBytes, so entry-count limits cannot produce frames
// the peer must reject.
const maxScanPageBytes = 4 << 20

func (o Options) withDefaults() Options {
	if o.SnapTTL <= 0 {
		o.SnapTTL = 30 * time.Second
	}
	if o.MaxScanPage <= 0 {
		o.MaxScanPage = 4096
	}
	return o
}

// Server serves one Store over one listener. Create it with Serve; stop it
// with Close.
type Server[K cmp.Ordered, V any] struct {
	store Store[K, V]
	codec durable.Codec[K, V]
	opts  Options
	ln    net.Listener

	mu     sync.Mutex
	conns  map[*conn[K, V]]struct{}
	closed bool

	stopReaper chan struct{}
	wg         sync.WaitGroup // accept loop + reaper + 2 goroutines per conn
}

// Serve starts serving store on ln with codec translating keys and values
// to and from their wire form. It returns immediately; Close stops the
// server and joins every goroutine it started.
func Serve[K cmp.Ordered, V any](ln net.Listener, store Store[K, V], codec durable.Codec[K, V], opts Options) *Server[K, V] {
	s := &Server[K, V]{
		store:      store,
		codec:      codec,
		opts:       opts.withDefaults(),
		ln:         ln,
		conns:      map[*conn[K, V]]struct{}{},
		stopReaper: make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.reapLoop()
	return s
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server[K, V]) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, severs every connection (closing their snapshot
// sessions) and joins all server goroutines. It is idempotent; operations
// in flight when it is called may or may not be applied, exactly as if the
// connection had dropped.
func (s *Server[K, V]) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]*conn[K, V], 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	close(s.stopReaper)
	for _, c := range conns {
		c.c.Close() // unblocks the conn's reader, which tears the rest down
	}
	s.wg.Wait()
	return err
}

// logf forwards to Options.Logf when set.
func (s *Server[K, V]) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acceptLoop accepts connections until the listener closes.
func (s *Server[K, V]) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("jiffyd: accept: %v", err)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c := &conn[K, V]{
			srv:  s,
			c:    nc,
			out:  make(chan []byte, 256),
			sess: map[uint64]*session[K, V]{},
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(2)
		s.mu.Unlock()
		go c.readLoop()
		go c.writeLoop()
	}
}

// reapLoop closes snapshot sessions idle longer than SnapTTL.
func (s *Server[K, V]) reapLoop() {
	defer s.wg.Done()
	tick := s.opts.SnapTTL / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stopReaper:
			return
		case <-t.C:
		}
		s.mu.Lock()
		conns := make([]*conn[K, V], 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		deadline := time.Now().Add(-s.opts.SnapTTL).UnixNano()
		for _, c := range conns {
			c.smu.Lock()
			for id, sess := range c.sess {
				if sess.lastUsed.Load() < deadline {
					delete(c.sess, id)
					sess.snap.Close()
				}
			}
			c.smu.Unlock()
		}
	}
}

// session is one server-side snapshot session: a registered store snapshot
// plus its idle clock.
type session[K cmp.Ordered, V any] struct {
	snap     Snap[K, V]
	lastUsed atomic.Int64 // unix nanos of the last operation naming it
}

func (s *session[K, V]) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// conn is one client connection: the reader goroutine (readLoop) executes
// requests and queues encoded responses on out; the writer goroutine
// (writeLoop) coalesces them onto the socket. The scratch fields belong to
// the reader goroutine alone.
type conn[K cmp.Ordered, V any] struct {
	srv *Server[K, V]
	c   net.Conn
	out chan []byte

	// smu guards the session table and spans any use of a session's
	// snapshot, so the TTL reaper cannot close a snapshot out from under
	// an executing request.
	smu      sync.Mutex
	sess     map[uint64]*session[K, V]
	nextSnap uint64

	// Reader-goroutine scratch, reused across requests.
	rbuf  []byte // frame read buffer
	kbuf  []byte // key encoding scratch
	vbuf  []byte // value encoding scratch
	batch *jiffy.Batch[K, V]
}

// respPool recycles response frame buffers between a conn's reader (which
// encodes into them) and its writer (which releases them after copying
// into the coalescing buffer). Buffers grown past maxPooledRespBytes by a
// large scan page are dropped instead of pooled, so one big scan does not
// pin multi-megabyte backing arrays behind every future ping.
const maxPooledRespBytes = 64 << 10

var respPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func getResp() []byte { return (*(respPool.Get().(*[]byte)))[:0] }
func putResp(b []byte) {
	if cap(b) > maxPooledRespBytes {
		return
	}
	respPool.Put(&b)
}

// readLoop decodes and executes request frames until the connection
// drops, then tears the connection down: sessions close, the writer
// drains and exits, the server forgets the conn.
func (c *conn[K, V]) readLoop() {
	defer c.srv.wg.Done()
	for {
		id, op, body, buf, err := wire.ReadFrame(c.c, c.rbuf)
		c.rbuf = buf
		if err != nil {
			break
		}
		c.out <- c.handle(id, op, body)
	}
	// Teardown. Closing the socket unblocks nothing here (the read
	// already failed) but stops the writer's Write calls from lingering.
	c.c.Close()
	c.smu.Lock()
	for id, sess := range c.sess {
		delete(c.sess, id)
		sess.snap.Close()
	}
	c.smu.Unlock()
	close(c.out)
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
}

// writeLoop coalesces response frames: one blocking receive, then a
// non-blocking drain of everything else already queued, one Write for the
// lot — the group-commit idiom, with the socket in the role of the log
// file. Exits when the reader closes out.
func (c *conn[K, V]) writeLoop() {
	defer c.srv.wg.Done()
	var wbuf []byte
	broken := false
	for f := range c.out {
		wbuf = append(wbuf[:0], f...)
		putResp(f)
	drain:
		for len(wbuf) < 256<<10 {
			select {
			case f, ok := <-c.out:
				if !ok {
					break drain
				}
				wbuf = append(wbuf, f...)
				putResp(f)
			default:
				break drain
			}
		}
		if !broken {
			if _, err := c.c.Write(wbuf); err != nil {
				// Sever the connection so the reader unblocks; keep
				// draining out so the reader never blocks sending to it.
				broken = true
				c.c.Close()
			}
		}
	}
}

// handle executes one request and returns its encoded response frame (a
// pooled buffer the writer releases).
func (c *conn[K, V]) handle(id uint64, op byte, body []byte) []byte {
	switch op {
	case wire.OpPing:
		return okFrame(id, nil)
	case wire.OpGet:
		return c.handleGet(id, body)
	case wire.OpPut:
		return c.handlePut(id, body)
	case wire.OpDel:
		return c.handleDel(id, body)
	case wire.OpBatch:
		return c.handleBatch(id, body)
	case wire.OpSnap:
		return c.handleSnap(id)
	case wire.OpSnapClose:
		return c.handleSnapClose(id, body)
	case wire.OpScan:
		return c.handleScan(id, body)
	}
	return errFrame(id, wire.StatusBadRequest, "unknown opcode")
}

// okFrame encodes a StatusOK response carrying body.
func okFrame(id uint64, body []byte) []byte {
	return wire.AppendFrame(getResp(), id, wire.StatusOK, body)
}

// statusFrame encodes an empty-bodied response with the given status.
func statusFrame(id uint64, status byte) []byte {
	return wire.AppendFrame(getResp(), id, status, nil)
}

// errFrame encodes a failure response with a human-readable message.
func errFrame(id uint64, status byte, msg string) []byte {
	return wire.AppendFrame(getResp(), id, status, []byte(msg))
}

// lookupSess returns the named session with its idle clock touched, or
// nil. Caller must hold smu across its use of the session's snapshot.
func (c *conn[K, V]) lookupSess(snapID uint64) *session[K, V] {
	sess := c.sess[snapID]
	if sess != nil {
		sess.touch()
	}
	return sess
}

func (c *conn[K, V]) handleGet(id uint64, body []byte) []byte {
	if len(body) < 8 {
		return errFrame(id, wire.StatusBadRequest, "get: short body")
	}
	snapID := binary.LittleEndian.Uint64(body[:8])
	key, err := c.srv.codec.Key.Decode(body[8:])
	if err != nil {
		return errFrame(id, wire.StatusBadRequest, "get: "+err.Error())
	}
	var val V
	var ok bool
	if snapID == 0 {
		val, ok = c.srv.store.Get(key)
	} else {
		c.smu.Lock()
		sess := c.lookupSess(snapID)
		if sess == nil {
			c.smu.Unlock()
			return statusFrame(id, wire.StatusUnknownSnap)
		}
		val, ok = sess.snap.Get(key)
		c.smu.Unlock()
	}
	if !ok {
		return statusFrame(id, wire.StatusNotFound)
	}
	c.vbuf = c.srv.codec.Value.Append(c.vbuf[:0], val)
	return okFrame(id, c.vbuf)
}

func (c *conn[K, V]) handlePut(id uint64, body []byte) []byte {
	kb, rest, err := wire.TakeBytes(body)
	if err != nil {
		return errFrame(id, wire.StatusBadRequest, "put: "+err.Error())
	}
	key, err := c.srv.codec.Key.Decode(kb)
	if err != nil {
		return errFrame(id, wire.StatusBadRequest, "put: "+err.Error())
	}
	val, err := c.srv.codec.Value.Decode(rest)
	if err != nil {
		return errFrame(id, wire.StatusBadRequest, "put: "+err.Error())
	}
	if err := c.srv.store.Put(key, val); err != nil {
		return errFrame(id, wire.StatusErr, err.Error())
	}
	return okFrame(id, nil)
}

func (c *conn[K, V]) handleDel(id uint64, body []byte) []byte {
	key, err := c.srv.codec.Key.Decode(body)
	if err != nil {
		return errFrame(id, wire.StatusBadRequest, "del: "+err.Error())
	}
	ok, err := c.srv.store.Remove(key)
	if err != nil {
		return errFrame(id, wire.StatusErr, err.Error())
	}
	if !ok {
		return statusFrame(id, wire.StatusNotFound)
	}
	return okFrame(id, nil)
}

func (c *conn[K, V]) handleBatch(id uint64, body []byte) []byte {
	if c.batch == nil {
		c.batch = jiffy.NewBatch[K, V](16)
	}
	b := c.batch.Reset()
	nops, n := binary.Uvarint(body)
	if n <= 0 {
		return errFrame(id, wire.StatusBadRequest, "batch: missing op count")
	}
	p := body[n:]
	for i := uint64(0); i < nops; i++ {
		if len(p) < 1 {
			return errFrame(id, wire.StatusBadRequest, "batch: truncated")
		}
		kind := p[0]
		p = p[1:]
		kb, rest, err := wire.TakeBytes(p)
		if err != nil {
			return errFrame(id, wire.StatusBadRequest, "batch: "+err.Error())
		}
		p = rest
		key, err := c.srv.codec.Key.Decode(kb)
		if err != nil {
			return errFrame(id, wire.StatusBadRequest, "batch: "+err.Error())
		}
		switch kind {
		case wire.BatchRemove:
			b.Remove(key)
		case wire.BatchPut:
			vb, rest, err := wire.TakeBytes(p)
			if err != nil {
				return errFrame(id, wire.StatusBadRequest, "batch: "+err.Error())
			}
			p = rest
			val, err := c.srv.codec.Value.Decode(vb)
			if err != nil {
				return errFrame(id, wire.StatusBadRequest, "batch: "+err.Error())
			}
			b.Put(key, val)
		default:
			return errFrame(id, wire.StatusBadRequest, "batch: unknown op kind")
		}
	}
	if err := c.srv.store.BatchUpdate(b); err != nil {
		return errFrame(id, wire.StatusErr, err.Error())
	}
	return okFrame(id, nil)
}

func (c *conn[K, V]) handleSnap(id uint64) []byte {
	snap := c.srv.store.Snapshot()
	sess := &session[K, V]{snap: snap}
	sess.touch()
	c.smu.Lock()
	c.nextSnap++
	snapID := c.nextSnap
	c.sess[snapID] = sess
	c.smu.Unlock()
	var body [16]byte
	binary.LittleEndian.PutUint64(body[0:8], snapID)
	binary.LittleEndian.PutUint64(body[8:16], uint64(snap.Version()))
	return okFrame(id, body[:])
}

func (c *conn[K, V]) handleSnapClose(id uint64, body []byte) []byte {
	if len(body) != 8 {
		return errFrame(id, wire.StatusBadRequest, "snap-close: short body")
	}
	snapID := binary.LittleEndian.Uint64(body)
	c.smu.Lock()
	sess := c.sess[snapID]
	if sess != nil {
		delete(c.sess, snapID)
		sess.snap.Close()
	}
	c.smu.Unlock()
	if sess == nil {
		return statusFrame(id, wire.StatusUnknownSnap)
	}
	return okFrame(id, nil)
}

// handleScan delivers one cursored page. The iterator lives only inside
// this request: a slow or stalled client pins no iterator state, no epoch
// and no server buffer between pages — just the session's snapshot
// registration, which the TTL reaper bounds.
func (c *conn[K, V]) handleScan(id uint64, body []byte) []byte {
	if len(body) < 13 {
		return errFrame(id, wire.StatusBadRequest, "scan: short body")
	}
	snapID := binary.LittleEndian.Uint64(body[0:8])
	maxEntries := int(binary.LittleEndian.Uint32(body[8:12]))
	mode := body[12]
	rest := body[13:]
	var cursor K
	if mode == wire.ScanInclusive || mode == wire.ScanExclusive {
		kb, r2, err := wire.TakeBytes(rest)
		if err != nil {
			return errFrame(id, wire.StatusBadRequest, "scan: "+err.Error())
		}
		rest = r2
		cursor, err = c.srv.codec.Key.Decode(kb)
		if err != nil {
			return errFrame(id, wire.StatusBadRequest, "scan: "+err.Error())
		}
	} else if mode != wire.ScanFromStart {
		return errFrame(id, wire.StatusBadRequest, "scan: unknown cursor mode")
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxEntries > c.srv.opts.MaxScanPage {
		maxEntries = c.srv.opts.MaxScanPage
	}

	var snap Snap[K, V]
	if snapID == 0 {
		// Sessionless page: an ephemeral snapshot for this page only.
		snap = c.srv.store.Snapshot()
		defer snap.Close()
	} else {
		c.smu.Lock()
		defer c.smu.Unlock()
		sess := c.lookupSess(snapID)
		if sess == nil {
			return statusFrame(id, wire.StatusUnknownSnap)
		}
		snap = sess.snap
	}

	it := snap.Iter()
	defer it.Close()
	if mode != wire.ScanFromStart {
		it.Seek(cursor)
	}
	resp, lenAt := wire.BeginFrame(getResp(), id, wire.StatusOK)
	moreAt := len(resp)
	resp = append(resp, 0) // more flag, patched below
	countAt := len(resp)
	resp = append(resp, 0, 0, 0, 0) // u32 count, patched below
	count := 0
	truncated := false
	for count < maxEntries && it.Next() {
		k := it.Key()
		if mode == wire.ScanExclusive && count == 0 && k == cursor {
			continue // the cursor key itself: delivered by the previous page
		}
		c.kbuf = c.srv.codec.Key.Append(c.kbuf[:0], k)
		c.vbuf = c.srv.codec.Value.Append(c.vbuf[:0], it.Value())
		entryBytes := len(c.kbuf) + len(c.vbuf) + 16 // two uvarint prefixes, generously
		if count > 0 && len(resp)+entryBytes > maxScanPageBytes {
			// The page is bounded by bytes as well as entries, so large
			// values cannot push a frame past the protocol limit. The
			// entry stays unsent; the client's cursor resumes on it.
			truncated = true
			break
		}
		if len(resp)+entryBytes > wire.MaxFrameBytes-64 {
			// A single entry too big for any frame (a value put near the
			// frame limit gains a key and length prefixes on the way
			// out): unservable by this protocol, and silently dropping it
			// would corrupt the scan. Report it instead of building a
			// frame the client must reject.
			putResp(resp)
			return errFrame(id, wire.StatusErr, "scan: entry exceeds the protocol frame limit")
		}
		resp = wire.AppendBytes(resp, c.kbuf)
		resp = wire.AppendBytes(resp, c.vbuf)
		count++
	}
	if truncated || (count == maxEntries && it.Next()) {
		resp[moreAt] = 1
	}
	binary.LittleEndian.PutUint32(resp[countAt:], uint32(count))
	return wire.EndFrame(resp, lenAt)
}
