package server

import (
	"cmp"

	"repro/jiffy"
	"repro/jiffy/durable"
)

// Store is the backend surface the server serves: the update operations of
// the jiffy frontends (error-returning, so the durable frontends fit
// without adaptation) plus snapshot registration for the session machinery.
// All methods must be safe for concurrent use — every connection's handler
// goroutine calls them directly, with no server-side serialization, so the
// store's own concurrency story (lock-free updates, O(1) snapshots) is
// what the network layer scales on.
type Store[K cmp.Ordered, V any] interface {
	// Get returns the live value for key.
	Get(key K) (V, bool)
	// Put sets the value for key, durable when the store is.
	Put(key K, val V) error
	// Remove deletes key, reporting whether it was present.
	Remove(key K) (bool, error)
	// BatchUpdate applies b in one atomic (cross-shard) step.
	BatchUpdate(b *jiffy.Batch[K, V]) error
	// Snapshot registers a consistent snapshot of the store.
	Snapshot() Snap[K, V]
}

// Snap is the snapshot surface a session needs: frozen point reads,
// streaming iteration and release. jiffy.Snapshot and jiffy.ShardedSnapshot
// both provide it.
type Snap[K cmp.Ordered, V any] interface {
	Version() int64
	Get(key K) (V, bool)
	Iter() jiffy.Iterator[K, V]
	Close()
}

// memStore adapts the in-memory sharded frontend to Store (updates cannot
// fail, so the error returns are uniformly nil).
type memStore[K cmp.Ordered, V any] struct {
	s *jiffy.Sharded[K, V]
}

// NewMemStore wraps a jiffy.Sharded map as a Store.
func NewMemStore[K cmp.Ordered, V any](s *jiffy.Sharded[K, V]) Store[K, V] {
	return memStore[K, V]{s: s}
}

func (m memStore[K, V]) Get(key K) (V, bool) { return m.s.Get(key) }
func (m memStore[K, V]) Put(key K, val V) error {
	m.s.Put(key, val)
	return nil
}
func (m memStore[K, V]) Remove(key K) (bool, error) { return m.s.Remove(key), nil }
func (m memStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error {
	m.s.BatchUpdate(b)
	return nil
}
func (m memStore[K, V]) Snapshot() Snap[K, V] { return m.s.Snapshot() }

// durStore adapts the durable sharded frontend to Store.
type durStore[K cmp.Ordered, V any] struct {
	d *durable.Sharded[K, V]
}

// NewDurableStore wraps a durable.Sharded map as a Store. Updates
// acknowledge to the client only after their log record is durable, so the
// wire-level acknowledgement inherits the WAL's guarantee.
func NewDurableStore[K cmp.Ordered, V any](d *durable.Sharded[K, V]) Store[K, V] {
	return durStore[K, V]{d: d}
}

func (s durStore[K, V]) Get(key K) (V, bool)                    { return s.d.Get(key) }
func (s durStore[K, V]) Put(key K, val V) error                 { return s.d.Put(key, val) }
func (s durStore[K, V]) Remove(key K) (bool, error)             { return s.d.Remove(key) }
func (s durStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V]) error { return s.d.BatchUpdate(b) }
func (s durStore[K, V]) Snapshot() Snap[K, V]                   { return s.d.Snapshot() }
