package server

import (
	"cmp"
	"sync/atomic"

	"repro/internal/trace"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// Store is the backend surface the server serves: the update operations of
// the jiffy frontends (error-returning, so the durable frontends fit
// without adaptation) plus snapshot registration for the session machinery.
// Updates report the version they committed at — the server returns it in
// write acknowledgements, and clients fold it into their read-your-writes
// floor for replica reads (version 0 when the update performed nothing:
// a remove of an absent key, an empty batch, or an in-memory store that
// does not track versions).
// Updates also take the request's trace context (nil-safe, may be nil):
// durable backends attribute their WAL time to it and propagate its trace
// ID into the replication feed; in-memory backends ignore it.
// All methods must be safe for concurrent use — every connection's handler
// goroutine calls them directly, with no server-side serialization, so the
// store's own concurrency story (lock-free updates, O(1) snapshots) is
// what the network layer scales on.
type Store[K cmp.Ordered, V any] interface {
	// Get returns the live value for key.
	Get(key K) (V, bool)
	// Put sets the value for key, durable when the store is, reporting
	// the commit version.
	Put(key K, val V, tc *trace.Ctx) (int64, error)
	// Remove deletes key, reporting the commit version and whether it
	// was present.
	Remove(key K, tc *trace.Ctx) (int64, bool, error)
	// BatchUpdate applies b in one atomic (cross-shard) step, reporting
	// the commit version.
	BatchUpdate(b *jiffy.Batch[K, V], tc *trace.Ctx) (int64, error)
	// Snapshot registers a consistent snapshot of the store.
	Snapshot() Snap[K, V]
}

// Snap is the snapshot surface a session needs: frozen point reads,
// streaming iteration and release. jiffy.Snapshot and jiffy.ShardedSnapshot
// both provide it.
type Snap[K cmp.Ordered, V any] interface {
	Version() int64
	Get(key K) (V, bool)
	Iter() jiffy.Iterator[K, V]
	Close()
}

// memStore adapts the in-memory sharded frontend to Store (updates cannot
// fail, so the error returns are uniformly nil; there is no durable or
// replicated stage to attribute, so the trace context is unused).
type memStore[K cmp.Ordered, V any] struct {
	s *jiffy.Sharded[K, V]
}

// NewMemStore wraps a jiffy.Sharded map as a Store.
func NewMemStore[K cmp.Ordered, V any](s *jiffy.Sharded[K, V]) Store[K, V] {
	return memStore[K, V]{s: s}
}

func (m memStore[K, V]) Get(key K) (V, bool) { return m.s.Get(key) }
func (m memStore[K, V]) Put(key K, val V, _ *trace.Ctx) (int64, error) {
	return m.s.PutVersioned(key, val), nil
}
func (m memStore[K, V]) Remove(key K, _ *trace.Ctx) (int64, bool, error) {
	ver, ok := m.s.RemoveVersioned(key)
	return ver, ok, nil
}
func (m memStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V], _ *trace.Ctx) (int64, error) {
	return m.s.BatchUpdateVersioned(b), nil
}
func (m memStore[K, V]) Snapshot() Snap[K, V] { return m.s.Snapshot() }

// durStore adapts the durable sharded frontend to Store.
type durStore[K cmp.Ordered, V any] struct {
	d *durable.Sharded[K, V]
}

// NewDurableStore wraps a durable.Sharded map as a Store. Updates
// acknowledge to the client only after their log record is durable, so the
// wire-level acknowledgement inherits the WAL's guarantee.
func NewDurableStore[K cmp.Ordered, V any](d *durable.Sharded[K, V]) Store[K, V] {
	return durStore[K, V]{d: d}
}

func (s durStore[K, V]) Get(key K) (V, bool) { return s.d.Get(key) }
func (s durStore[K, V]) Put(key K, val V, tc *trace.Ctx) (int64, error) {
	return s.d.PutVT(key, val, tc)
}
func (s durStore[K, V]) Remove(key K, tc *trace.Ctx) (int64, bool, error) {
	return s.d.RemoveVT(key, tc)
}
func (s durStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V], tc *trace.Ctx) (int64, error) {
	return s.d.BatchUpdateVT(b, tc)
}
func (s durStore[K, V]) Snapshot() Snap[K, V] { return s.d.Snapshot() }

// replicaStore adapts a durable.Replica to Store. Reads serve the
// replicated state; writes fail with durable.ErrNotPromoted until the
// replica is promoted (the server turns the read-only state into
// StatusReadOnly before they get here — this is the backstop).
type replicaStore[K cmp.Ordered, V any] struct {
	r *durable.Replica[K, V]
}

// NewReplicaStore wraps a durable.Replica as a Store.
func NewReplicaStore[K cmp.Ordered, V any](r *durable.Replica[K, V]) Store[K, V] {
	return replicaStore[K, V]{r: r}
}

func (s replicaStore[K, V]) Get(key K) (V, bool) { return s.r.Get(key) }
func (s replicaStore[K, V]) Put(key K, val V, _ *trace.Ctx) (int64, error) {
	return s.r.PutV(key, val)
}
func (s replicaStore[K, V]) Remove(key K, _ *trace.Ctx) (int64, bool, error) {
	return s.r.RemoveV(key)
}
func (s replicaStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V], _ *trace.Ctx) (int64, error) {
	return s.r.BatchUpdateV(b)
}
func (s replicaStore[K, V]) Snapshot() Snap[K, V] { return s.r.Snapshot() }

// SwitchableStore is a Store whose backend can be swapped while the
// server keeps serving — the mechanism behind an in-process demotion: a
// fenced ex-primary closes its durable.Sharded, reopens the directory as
// a durable.Replica, and Swaps it in without dropping a single client
// connection. Requests racing the swap land wholly on the old or the new
// backend; writes racing a demotion fail with the old store's closed
// error, which clients treat like any other transient write failure.
type SwitchableStore[K cmp.Ordered, V any] struct {
	cur atomic.Pointer[Store[K, V]]
}

// NewSwitchableStore returns a SwitchableStore initially serving s.
func NewSwitchableStore[K cmp.Ordered, V any](s Store[K, V]) *SwitchableStore[K, V] {
	sw := &SwitchableStore[K, V]{}
	sw.cur.Store(&s)
	return sw
}

// Swap atomically replaces the backend; in-flight requests finish on
// whichever backend they started with.
func (sw *SwitchableStore[K, V]) Swap(s Store[K, V]) { sw.cur.Store(&s) }

// Current returns the backend currently being served.
func (sw *SwitchableStore[K, V]) Current() Store[K, V] { return *sw.cur.Load() }

func (sw *SwitchableStore[K, V]) Get(key K) (V, bool) { return sw.Current().Get(key) }
func (sw *SwitchableStore[K, V]) Put(key K, val V, tc *trace.Ctx) (int64, error) {
	return sw.Current().Put(key, val, tc)
}
func (sw *SwitchableStore[K, V]) Remove(key K, tc *trace.Ctx) (int64, bool, error) {
	return sw.Current().Remove(key, tc)
}
func (sw *SwitchableStore[K, V]) BatchUpdate(b *jiffy.Batch[K, V], tc *trace.Ctx) (int64, error) {
	return sw.Current().BatchUpdate(b, tc)
}
func (sw *SwitchableStore[K, V]) Snapshot() Snap[K, V] { return sw.Current().Snapshot() }
