package server

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/jiffy"
)

// FuzzConnBytes feeds arbitrary byte streams — from garbage to mutated
// valid request frames — straight into a live server connection, in both
// serving modes, and asserts the contract a hostile or broken client
// gets: the server never panics, never wedges, and a well-behaved
// neighbor connection on the same loop keeps working throughout. The
// fuzzed connection itself either answers frames or gets severed; both
// are legal, hanging is not.
func FuzzConnBytes(f *testing.F) {
	// Seeds: a valid pipelined exchange, a corrupt length, a giant
	// announced frame, a truncated batch, and interleavings thereof.
	ping := wire.AppendFrame(nil, 1, wire.OpPing, nil)
	put := wire.AppendFrame(nil, 2, wire.OpPut, append([]byte{8}, []byte("\x2a\x00\x00\x00\x00\x00\x00\x00\x08\x07\x00\x00\x00\x00\x00\x00\x00")...))
	badLen := []byte{3, 0, 0, 0, 1, 2, 3}
	huge := []byte{255, 255, 255, 255, 0, 0, 0, 0}
	f.Add(ping)
	f.Add(append(append([]byte{}, ping...), ping...))
	f.Add(put)
	f.Add(badLen)
	f.Add(huge)
	f.Add(append(append([]byte{}, ping...), badLen...))
	f.Add(wire.AppendFrame(nil, 3, wire.OpBatch, []byte{200}))
	f.Add(wire.AppendFrame(nil, 4, wire.OpScan, []byte{0, 0, 0, 0, 0, 0, 0, 0, 16, 0, 0, 0, 9}))

	f.Fuzz(fuzzOneStream)
}

// fuzzOneStream runs one fuzz input against both cores, a fresh server
// apiece: write the bytes, read whatever comes back, then prove the
// server is still healthy with a fresh connection's ping.
func fuzzOneStream(t *testing.T, data []byte) {
	for _, mode := range []Mode{ModeEventLoop, ModeGoroutine} {
		s := jiffy.NewSharded[uint64, uint64](2)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := Serve(ln, NewMemStore(s), u64Codec(), Options{Mode: mode, Loops: 1})
		addr := srv.Addr().String()

		// The victim: raw bytes, no protocol discipline.
		vc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		vc.SetDeadline(time.Now().Add(5 * time.Second))
		vc.Write(data)
		// Half-close so a frame-aligned stream drains to EOF server-side;
		// then swallow responses until the server answers everything or
		// severs us. Either way this must not hang.
		if tc, ok := vc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		io.Copy(io.Discard, vc)
		vc.Close()

		// The neighbor: a well-formed ping must still round-trip.
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("neighbor dial: %v", err)
		}
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		ping := wire.AppendFrame(nil, 99, wire.OpPing, nil)
		if _, err := nc.Write(ping); err != nil {
			t.Fatalf("neighbor write: %v", err)
		}
		id, status, _, _, err := wire.ReadFrame(nc, nil)
		if err != nil || id != 99 || status != wire.StatusOK {
			t.Fatalf("neighbor ping after fuzz stream: id=%d status=%d err=%v (mode %v)", id, status, err, mode)
		}
		nc.Close()

		if err := srv.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestFuzzSeedsDirect replays the seed shapes without the fuzz driver, so
// `go test` exercises the hostile-bytes path on every CI run, not only
// when fuzzing is invoked.
func TestFuzzSeedsDirect(t *testing.T) {
	seeds := [][]byte{
		nil,
		{0, 0, 0, 0},
		{3, 0, 0, 0, 1, 2, 3},
		{255, 255, 255, 255, 0, 0, 0, 0},
		wire.AppendFrame(nil, 1, wire.OpPing, nil),
		wire.AppendFrame(nil, 3, wire.OpBatch, []byte{200}),
		bytes.Repeat([]byte{0x5a}, 4096),
	}
	for _, s := range seeds {
		fuzzOneStream(t, s)
	}
}
