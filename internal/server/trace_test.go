package server

import (
	"bytes"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// spansByStage indexes a recorder snapshot: stage -> trace IDs seen.
func spansByStage(r *trace.Recorder) map[trace.Stage]map[uint64]int {
	out := map[trace.Stage]map[uint64]int{}
	for _, sp := range r.Snapshot() {
		m := out[sp.Stage]
		if m == nil {
			m = map[uint64]int{}
			out[sp.Stage] = m
		}
		m[sp.Trace]++
	}
	return out
}

// TestTracePropagationBothCores proves the trace envelope crosses the
// wire and stitches client-side and server-side spans by one ID, on both
// serving cores, through the durable store so the WAL stage shows up.
func TestTracePropagationBothCores(t *testing.T) {
	testutil.LeakCheck(t)
	for _, mode := range []Mode{ModeGoroutine, ModeEventLoop} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			codec := u64Codec()
			srec := trace.NewRecorder(4096)
			d, err := durable.OpenSharded(dir, 2, codec, durable.Options[uint64]{Tracer: srec})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := Serve(ln, NewDurableStore(d), codec, Options{Mode: mode, Loops: 1, Tracer: srec})
			defer srv.Close()

			crec := trace.NewRecorder(4096)
			c, err := client.Dial(srv.Addr().String(), codec, client.Options{
				Conns: 2, Tracer: crec, TraceSample: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const n = 50
			for i := uint64(0); i < n; i++ {
				if err := c.Put(i, i*3); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			for i := uint64(0); i < n; i++ {
				if v, ok, err := c.Get(i); err != nil || !ok || v != i*3 {
					t.Fatalf("get %d = %d/%v/%v", i, v, ok, err)
				}
			}

			cs, ss := spansByStage(crec), spansByStage(srec)
			clientIDs := cs[trace.StageClient]
			if len(clientIDs) < n {
				t.Fatalf("client recorded %d traced round trips, want >= %d", len(clientIDs), n)
			}
			if len(cs[trace.StageClientEnqueue]) == 0 {
				t.Fatalf("no client_enqueue spans (pipelined writer should record queue wait)")
			}
			// Every client-side ID must reappear in the server's recorder —
			// that is the wire propagation — and traced puts must leave a
			// WAL span under the same ID.
			joined, walJoined := 0, 0
			for id := range clientIDs {
				if id == 0 {
					t.Fatalf("client recorded an untraced span as traced")
				}
				if ss[trace.StageServer][id] > 0 {
					joined++
				}
				if ss[trace.StageWAL][id] > 0 {
					walJoined++
				}
			}
			if joined != len(clientIDs) {
				t.Fatalf("only %d of %d client trace IDs joined server spans", joined, len(clientIDs))
			}
			if walJoined < n {
				t.Fatalf("only %d trace IDs joined WAL spans, want >= %d (one per put)", walJoined, n)
			}
			// Batch-level spans carry trace ID 0: response flushes on this
			// core, and the group-commit fsyncs under the store.
			if len(ss[trace.StageFlush]) == 0 || ss[trace.StageFlush][0] == 0 {
				t.Fatalf("no flush spans: %v", ss[trace.StageFlush])
			}
			if ss[trace.StageFsync][0] == 0 {
				t.Fatalf("no fsync spans")
			}
		})
	}
}

// TestUntracedRequestsStayUntraced: without client sampling the server
// still measures every stage, but no span carries a trace ID.
func TestUntracedRequestsStayUntraced(t *testing.T) {
	testutil.LeakCheck(t)
	srec := trace.NewRecorder(1024)
	_, _, addr := startServer(t, 2, Options{Tracer: srec})
	c := dial(t, addr, client.Options{Conns: 1})
	for i := uint64(0); i < 20; i++ {
		if err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	ss := spansByStage(srec)
	if len(ss[trace.StageServer]) != 1 || ss[trace.StageServer][0] == 0 {
		t.Fatalf("untraced traffic left trace IDs: %v", ss[trace.StageServer])
	}
}

// lockedBuf makes a bytes.Buffer safe to share with the server's logging
// goroutines.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceSlowLog: a request crossing Options.TraceSlow leaves one
// structured line attributing its time across stages.
func TestTraceSlowLog(t *testing.T) {
	testutil.LeakCheck(t)
	var buf lockedBuf
	srec := trace.NewRecorder(1024)
	_, _, addr := startServer(t, 2, Options{
		Tracer:    srec,
		TraceSlow: time.Nanosecond, // everything is an outlier
		TraceLog:  slog.New(slog.NewTextHandler(&buf, nil)),
	})
	crec := trace.NewRecorder(1024)
	c := dial(t, addr, client.Options{Conns: 1, Tracer: crec, TraceSample: 1})
	if err := c.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	// The log write happens inside exec, before the response flushes, so
	// one acked put guarantees the line is out.
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "stage_wal") {
		t.Fatalf("slow-request line missing or unattributed: %q", out)
	}
	if !strings.Contains(out, "op=put") {
		t.Fatalf("slow-request line lost the opcode: %q", out)
	}
}
