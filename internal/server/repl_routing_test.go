package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/testutil"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// End-to-end read-routing tests: a durable primary serving writes, a
// replica applying its stream and serving reads, and a client configured
// with both — asserting writes land on the primary, reads are served by
// the replica once it covers the client's read-your-writes floor, a
// lagging replica falls back to the primary, and direct writes to a
// replica are refused.

// startReplPair wires primary store + replication source + wire server,
// and replica store + runner + read-only wire server. It returns the
// stores, both wire servers, and their addresses.
func startReplPair(t *testing.T) (pstore *durable.Sharded[uint64, uint64], rep *durable.Replica[uint64, uint64],
	psrv, rsrv *Server[uint64, uint64], paddr, raddr string) {
	t.Helper()
	pstore, err := durable.OpenSharded(t.TempDir(), 4, u64Codec(),
		durable.Options[uint64]{SegmentBytes: 1 << 12, NoSync: true, StrictClock: true})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	src := repl.NewSource(pstore, u64Codec(), repl.SourceOptions{HeartbeatEvery: 20 * time.Millisecond})
	srcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go src.Serve(srcLn)

	rep, err = durable.OpenReplica(t.TempDir(), 4, u64Codec(),
		durable.Options[uint64]{SegmentBytes: 1 << 12, NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	runner := repl.NewRunner(rep, u64Codec(), srcLn.Addr().String(), repl.RunnerOptions{
		Backoff: repl.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	runner.Start()
	t.Cleanup(func() {
		runner.Stop()
		src.Close()
		pstore.Close()
		rep.Close()
	})

	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	psrv = Serve(pln, NewDurableStore(pstore), u64Codec(), Options{})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	rsrv = Serve(rln, NewReplicaStore(rep), u64Codec(), Options{
		Watermark: rep.Watermark,
		ReadOnly:  true,
	})
	t.Cleanup(func() {
		psrv.Close()
		rsrv.Close()
	})
	return pstore, rep, psrv, rsrv, psrv.Addr().String(), rsrv.Addr().String()
}

// TestReplicaReadRouting is the happy path: the client writes through the
// primary, its floor follows the write acks, and every read — point get,
// snapshot get, live scan — returns read-your-writes-consistent data
// whether the replica has caught up (replica serves) or not (primary
// fallback), transparently.
func TestReplicaReadRouting(t *testing.T) {
	testutil.LeakCheck(t)
	_, rep, _, _, paddr, raddr := startReplPair(t)
	c := dial(t, paddr, client.Options{Conns: 1, Replicas: []string{raddr}, ScanPageSize: 16})

	for i := uint64(0); i < 100; i++ {
		if err := c.Put(i, i*10); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if c.Floor() == 0 {
		t.Fatal("write acks did not advance the client's read floor")
	}
	// Immediately after the writes the replica may or may not be caught
	// up; reads must be correct either way.
	for i := uint64(0); i < 100; i++ {
		v, ok, err := c.Get(i)
		if err != nil || !ok || v != i*10 {
			t.Fatalf("get(%d) right after write: %d/%v/%v", i, v, ok, err)
		}
	}

	// Scans see every write too (floor-consistent live scan).
	sc := c.ScanAll()
	n := 0
	for sc.Next() {
		if sc.Value() != sc.Key()*10 {
			t.Fatalf("scan saw %d=%d", sc.Key(), sc.Value())
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n != 100 {
		t.Fatalf("scan saw %d keys, want 100", n)
	}
	sc.Close()

	// Snapshot sessions respect the floor as well: the snapshot's cut
	// must cover every acked write.
	testutil.Eventually(t, func() bool { return rep.Watermark() >= c.Floor() }, "replica never caught up")
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if v, ok, err := snap.Get(42); err != nil || !ok || v != 420 {
		t.Fatalf("snapshot get: %d/%v/%v", v, ok, err)
	}
	snap.Close()
}

// TestReplicaServesWhenPrimaryDown proves reads really are served by the
// replica: once the replica's watermark covers the client's floor, the
// primary's wire server goes away entirely — and point gets, scans and
// snapshots keep working. (Only the read path is replica-routed; writes
// fail with the primary down, as they must.)
func TestReplicaServesWhenPrimaryDown(t *testing.T) {
	testutil.LeakCheck(t)
	_, rep, psrv, _, paddr, raddr := startReplPair(t)
	c := dial(t, paddr, client.Options{Conns: 1, Replicas: []string{raddr}, ScanPageSize: 16})

	for i := uint64(0); i < 50; i++ {
		if err := c.Put(i, i+1); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	testutil.Eventually(t, func() bool { return rep.Watermark() >= c.Floor() }, "replica never caught up")

	psrv.Close()

	for i := uint64(0); i < 50; i++ {
		v, ok, err := c.Get(i)
		if err != nil || !ok || v != i+1 {
			t.Fatalf("get(%d) with primary down: %d/%v/%v", i, v, ok, err)
		}
	}
	sc := c.ScanAll()
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan with primary down: %v", err)
	}
	if n != 50 {
		t.Fatalf("scan saw %d keys with primary down, want 50", n)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot with primary down: %v", err)
	}
	if v, ok, err := snap.Get(7); err != nil || !ok || v != 8 {
		t.Fatalf("snapshot get with primary down: %d/%v/%v", v, ok, err)
	}
	snap.Close()

	// Writes, though, need the primary.
	if err := c.Put(1000, 1); err == nil {
		t.Fatal("put succeeded with the primary down")
	}
}

// TestLaggingReplicaFallsBack pins the replica at a stale watermark (its
// runner never started) and asserts reads still return the freshest acked
// data: the replica answers StatusBehind for any floor above its
// watermark, and the client completes the read on the primary.
func TestLaggingReplicaFallsBack(t *testing.T) {
	testutil.LeakCheck(t)
	pstore, err := durable.OpenSharded(t.TempDir(), 2, u64Codec(),
		durable.Options[uint64]{SegmentBytes: 1 << 12, NoSync: true, StrictClock: true})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	rep, err := durable.OpenReplica(t.TempDir(), 2, u64Codec(),
		durable.Options[uint64]{SegmentBytes: 1 << 12, NoSync: true})
	if err != nil {
		t.Fatalf("OpenReplica: %v", err)
	}
	t.Cleanup(func() {
		pstore.Close()
		rep.Close()
	})
	pln, _ := net.Listen("tcp", "127.0.0.1:0")
	psrv := Serve(pln, NewDurableStore(pstore), u64Codec(), Options{})
	rln, _ := net.Listen("tcp", "127.0.0.1:0")
	rsrv := Serve(rln, NewReplicaStore(rep), u64Codec(), Options{Watermark: rep.Watermark, ReadOnly: true})
	t.Cleanup(func() {
		psrv.Close()
		rsrv.Close()
	})

	c := dial(t, psrv.Addr().String(), client.Options{
		Conns: 1, Replicas: []string{rsrv.Addr().String()}, ScanPageSize: 8,
	})
	// Every write raises the floor past the never-synced replica
	// (watermark 0): each read must detect Behind and fall back.
	for i := uint64(0); i < 20; i++ {
		if err := c.Put(i, i*3); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := uint64(0); i < 20; i++ {
		v, ok, err := c.Get(i)
		if err != nil || !ok || v != i*3 {
			t.Fatalf("get(%d) behind a stale replica: %d/%v/%v", i, v, ok, err)
		}
	}
	sc := c.ScanAll()
	n := 0
	for sc.Next() {
		if sc.Value() != sc.Key()*3 {
			t.Fatalf("scan saw stale %d=%d", sc.Key(), sc.Value())
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan behind a stale replica: %v", err)
	}
	if n != 20 {
		t.Fatalf("scan saw %d keys behind a stale replica, want 20", n)
	}
	if snap, err := c.Snapshot(); err != nil {
		t.Fatalf("snapshot behind a stale replica: %v", err)
	} else {
		if v, ok, err := snap.Get(3); err != nil || !ok || v != 9 {
			t.Fatalf("snapshot get: %d/%v/%v", v, ok, err)
		}
		snap.Close()
	}
}

// TestReplicaRefusesWrites dials the replica's wire server directly (as
// if it were a primary) and asserts every mutation is refused with the
// read-only error while reads pass.
func TestReplicaRefusesWrites(t *testing.T) {
	testutil.LeakCheck(t)
	pstore, rep, _, _, _, raddr := startReplPair(t)
	if err := pstore.Put(5, 55); err != nil {
		t.Fatalf("seed put: %v", err)
	}
	testutil.Eventually(t, func() bool { return rep.Watermark() > 0 }, "replica never synced")

	direct := dial(t, raddr, client.Options{Conns: 1})
	if v, ok, err := direct.Get(5); err != nil || !ok || v != 55 {
		t.Fatalf("direct replica get: %d/%v/%v", v, ok, err)
	}
	assertReadOnly := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, client.ErrReadOnly) {
			t.Fatalf("%s on a replica: %v, want client.ErrReadOnly", op, err)
		}
	}
	assertReadOnly("put", direct.Put(9, 9))
	_, err := direct.Remove(5)
	assertReadOnly("remove", err)

	if _, ok, err := direct.Get(5); err != nil || !ok {
		t.Fatalf("replica get after refused writes: %v/%v", ok, err)
	}
}

// TestDialRetry asserts the client's opt-in dial backoff: with no
// listener, Dial fails fast by default and keeps retrying under
// DialRetry until its budget expires; with a listener appearing late,
// DialRetry bridges the gap.
func TestDialRetry(t *testing.T) {
	testutil.LeakCheck(t)
	// Reserve an address with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	if _, err := client.Dial(addr, u64Codec(), client.Options{Conns: 1}); err == nil {
		t.Fatal("default dial succeeded against a dead address")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("default dial burned %v retrying; retry must be opt-in", d)
	}

	start = time.Now()
	_, err = client.Dial(addr, u64Codec(), client.Options{
		Conns: 1, DialRetry: true, DialRetryBudget: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("retrying dial succeeded against a dead address")
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("retrying dial gave up after %v, before its 300ms budget", d)
	}

	// Late listener: the server comes up while the client is retrying.
	lateLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	lateAddr := lateLn.Addr().String()
	lateLn.Close()
	errc := make(chan error, 1)
	go func() {
		c, err := client.Dial(lateAddr, u64Codec(), client.Options{
			Conns: 1, DialRetry: true, DialRetryBudget: 5 * time.Second,
		})
		if err == nil {
			err = errors.Join(c.Ping(), func() error { c.Close(); return nil }())
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)
	ln2, err := net.Listen("tcp", lateAddr)
	if err != nil {
		t.Fatalf("late listen: %v", err)
	}
	s := jiffy.NewSharded[uint64, uint64](2)
	srv := Serve(ln2, NewMemStore(s), u64Codec(), Options{})
	defer srv.Close()
	if err := <-errc; err != nil {
		t.Fatalf("dial with late listener: %v", err)
	}
}
