// Package trace is jiffyd's end-to-end request tracing layer: a
// fixed-size, lock-free flight recorder of typed span events stitched by
// a trace ID that the client generates and the wire protocol propagates
// (wire.FlagTraced). A single traced write leaves spans at every stage it
// crosses — client round trip, server execution, WAL append and
// group-commit fsync, replication stream and replica apply — so "where
// did this request spend its time" has an answer across up to four
// processes.
//
// The recorder borrows internal/obs's striped-cell idiom: spans land in
// per-stripe ring buffers of fixed-size slots, a writer picks its stripe
// with the per-P cheap random source and claims a slot with one atomic
// add plus a seqlock CAS — no mutex, no allocation, no unbounded memory.
// When two writers collide on a wrapped slot the loser DROPS its span
// (counted in jiffy_trace_spans_dropped_total) rather than wait: the
// flight recorder is diagnostic, the hot path is not allowed to block on
// it. Readers (the /trace endpoint) validate each slot's sequence word
// before and after copying it and discard torn reads, the classic seqlock
// discipline.
//
// Recording is always on: every request leaves spans (trace ID 0 when the
// client did not propagate one) and feeds the per-stage duration
// histograms (jiffy_stage_seconds{stage=...}) exactly, so /metrics can
// answer "where does p99 go" fleet-wide without any sampling bias. The
// sample rate (SetSampleRate, jiffyd -trace-sample) gates only the ring
// writes. See DESIGN.md §13.
package trace

import (
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stage identifies where in the request's life a span was measured.
type Stage uint8

const (
	// StageClient is the client-side write round trip: encode to decode,
	// including queue wait, socket time and server execution.
	StageClient Stage = iota
	// StageClientEnqueue is the client-side queue wait: from the request
	// entering the pipelined writer's queue to the moment its bytes are
	// handed to the socket write.
	StageClientEnqueue
	// StageServer is server-side execution: the exec() seam both serving
	// cores share, from frame decode to response bytes appended.
	StageServer
	// StageWAL is the durable write path: WAL append including the group
	// commit queue wait and the leader's fsync, as one request sees it.
	StageWAL
	// StageFsync is one group-commit fsync at the WAL leader (trace ID 0:
	// a batch serves many requests; Extra carries the batch byte count).
	StageFsync
	// StageFlush is one response flush write — a writev (event-loop core)
	// or a coalesced write (goroutine core); trace ID 0, Extra carries
	// the flushed byte count.
	StageFlush
	// StageReplStream is replication streaming: from a record's publish
	// into the tap to its batch frame being written to one subscriber.
	StageReplStream
	// StageReplApply is the replica applying one streamed record to its
	// local store.
	StageReplApply
	// StageReplAck is the source-side ack round trip: from a batch frame
	// written to the subscriber acking past it.
	StageReplAck

	numStages
)

var stageNames = [numStages]string{
	"client", "client_enqueue", "server", "wal", "fsync", "flush",
	"repl_stream", "repl_apply", "repl_ack",
}

// String returns the stage's exposition name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one recorded event, as Snapshot returns it.
type Span struct {
	Trace uint64 // stitching ID; 0 for untraced or batch-level spans
	Stage Stage
	Op    byte  // wire opcode (0 where not applicable)
	Start int64 // unix nanoseconds
	Dur   int64 // nanoseconds
	Extra int64 // stage-specific: bytes, record version, ...
}

// slot is one seqlock-guarded span cell. The sequence word is even when
// the slot is stable, odd while a writer owns it; a writer bumps it twice
// per publish, so a reader seeing the same even value before and after
// its copy has read a consistent span.
type slot struct {
	seq   atomic.Uint64
	tid   atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	extra atomic.Int64
	meta  atomic.Uint64 // stage | op<<8
}

// stripe is one ring of slots with its own claim cursor, padded so
// neighboring stripes' cursors do not share a cache line.
type stripe struct {
	pos   atomic.Uint64
	_     [56]byte
	slots []slot
}

// Recorder is the flight recorder. The zero value is not usable; create
// one with NewRecorder. All methods are nil-receiver safe no-ops, so
// subsystems carry an optional *Recorder and call through unconditionally.
type Recorder struct {
	stripes    []stripe
	stripeMask int
	slotMask   uint64

	// sampleT is the ring-write threshold: a span lands in the ring when
	// a cheap random draw is <= sampleT. ^0 means always (rate 1.0).
	sampleT atomic.Uint64

	hist    [numStages]*obs.Histogram // nil until RegisterMetrics
	dropped *obs.Counter
}

// DefaultSlots is the default ring capacity per stripe.
const DefaultSlots = 1024

// NewRecorder returns a recorder holding slotsPerStripe spans (rounded up
// to a power of two; DefaultSlots when <= 0) in each of its stripes. The
// stripe count follows internal/obs: a power of two at or above
// GOMAXPROCS, clamped to [4, 64], so parallel writers rarely collide.
func NewRecorder(slotsPerStripe int) *Recorder {
	if slotsPerStripe <= 0 {
		slotsPerStripe = DefaultSlots
	}
	slots := 1
	for slots < slotsPerStripe {
		slots <<= 1
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	n = min(max(n, 4), 64)
	r := &Recorder{
		stripes:    make([]stripe, n),
		stripeMask: n - 1,
		slotMask:   uint64(slots) - 1,
	}
	for i := range r.stripes {
		r.stripes[i].slots = make([]slot, slots)
	}
	r.sampleT.Store(^uint64(0))
	return r
}

// RegisterMetrics registers the per-stage duration histograms
// (jiffy_stage_seconds{stage=...}) and the ring-drop counter on reg.
// Every Record feeds its stage's histogram exactly, regardless of the
// sample rate.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	for s := Stage(0); s < numStages; s++ {
		r.hist[s] = reg.Histogram(
			`jiffy_stage_seconds{stage="`+s.String()+`"}`,
			"Per-stage request latency attributed by the trace recorder.",
			obs.LatencyBuckets)
	}
	r.dropped = reg.Counter("jiffy_trace_spans_dropped_total",
		"Spans dropped by the flight recorder (ring write contention).")
}

// SetSampleRate sets the fraction of spans written to the ring (clamped
// to [0, 1]). Histograms are unaffected: they see every span.
func (r *Recorder) SetSampleRate(rate float64) {
	if r == nil {
		return
	}
	switch {
	case rate >= 1:
		r.sampleT.Store(^uint64(0))
	case rate <= 0:
		r.sampleT.Store(0)
	default:
		r.sampleT.Store(uint64(rate * float64(^uint64(0))))
	}
}

// Record stores one span: the stage histogram always, the ring subject to
// the sample rate. 0 allocations; safe from any goroutine; never blocks —
// on a claim collision the span is dropped and counted.
func (r *Recorder) Record(stage Stage, tid uint64, op byte, start time.Time, dur time.Duration, extra int64) {
	if r == nil {
		return
	}
	r.hist[stage].Observe(dur.Seconds())
	if t := r.sampleT.Load(); t != ^uint64(0) && (t == 0 || rand.Uint64() > t) {
		return
	}
	st := &r.stripes[int(rand.Uint64())&r.stripeMask]
	sl := &st.slots[(st.pos.Add(1)-1)&r.slotMask]
	seq := sl.seq.Load()
	if seq&1 != 0 || !sl.seq.CompareAndSwap(seq, seq+1) {
		// Another writer owns this slot (the ring lapped itself mid-write):
		// drop rather than wait. The recorder must never block the hot path.
		r.dropped.Inc()
		return
	}
	sl.tid.Store(tid)
	sl.start.Store(start.UnixNano())
	sl.dur.Store(int64(dur))
	sl.extra.Store(extra)
	sl.meta.Store(uint64(stage) | uint64(op)<<8)
	sl.seq.Store(seq + 2)
}

// Snapshot copies every stable span out of the rings, newest-first by
// start time. Torn slots (a writer mid-publish, or lapped between the two
// sequence reads) are skipped; the result is a sample of recent history,
// not a consistent cut — exactly what a flight recorder promises.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.stripes {
		st := &r.stripes[i]
		for j := range st.slots {
			sl := &st.slots[j]
			seq := sl.seq.Load()
			if seq == 0 || seq&1 != 0 {
				continue // never written, or write in progress
			}
			sp := Span{
				Trace: sl.tid.Load(),
				Start: sl.start.Load(),
				Dur:   sl.dur.Load(),
				Extra: sl.extra.Load(),
			}
			meta := sl.meta.Load()
			sp.Stage, sp.Op = Stage(meta&0xff), byte(meta>>8)
			if sl.seq.Load() != seq {
				continue // torn: a writer republished underneath us
			}
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start > out[b].Start })
	return out
}

// Ctx is the per-request trace context a serving core threads through the
// layers a request crosses: the propagated trace ID plus per-stage
// nanosecond accumulators for the slow-request breakdown. It is embedded
// by value in per-connection state and reused across requests (Arm
// resets it), so tracing adds no per-request allocation. All methods are
// nil-receiver safe.
type Ctx struct {
	rec   *Recorder
	id    uint64
	op    byte
	nanos [numStages]int64
}

// Arm resets the context for one request: recorder, propagated trace ID
// (0 when the frame carried none) and opcode.
func (c *Ctx) Arm(rec *Recorder, id uint64, op byte) {
	if c == nil {
		return
	}
	c.rec, c.id, c.op = rec, id, op
	clear(c.nanos[:])
}

// ID returns the propagated trace ID (0 when untraced or nil).
func (c *Ctx) ID() uint64 {
	if c == nil {
		return 0
	}
	return c.id
}

// Observe records one span for the armed request's stage — duration
// measured from start to now — and accumulates it for StageNanos.
func (c *Ctx) Observe(stage Stage, start time.Time) {
	if c == nil || c.rec == nil {
		return
	}
	dur := time.Since(start)
	c.nanos[stage] += int64(dur)
	c.rec.Record(stage, c.id, c.op, start, dur, 0)
}

// StageNanos returns the nanoseconds accumulated in stage since Arm.
func (c *Ctx) StageNanos(stage Stage) int64 {
	if c == nil {
		return 0
	}
	return c.nanos[stage]
}
