package trace

import (
	"net/http"
	"strconv"
)

// Handler returns the /trace endpoint: a JSON array of recent spans,
// newest first. Query parameters filter server-side so jiffyctl can ask
// narrow questions of a busy node:
//
//	?trace=HEX     only spans stitched by this trace ID
//	?stage=NAME    only spans of this stage (e.g. wal, repl_apply)
//	?min_us=N      only spans at least N microseconds long
//	?limit=N       at most N spans (default 256)
//
// The response is built from one Snapshot: a bounded copy, no locks held
// against the hot path, no state retained per request.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		limit := 256
		if s := q.Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		var wantTrace uint64
		if s := q.Get("trace"); s != "" {
			wantTrace, _ = strconv.ParseUint(s, 16, 64)
		}
		wantStage := q.Get("stage")
		var minNS int64
		if s := q.Get("min_us"); s != "" {
			if n, err := strconv.ParseInt(s, 10, 64); err == nil {
				minNS = n * 1000
			}
		}

		buf := []byte(`{"spans":[`)
		n := 0
		for _, sp := range r.Snapshot() {
			if wantTrace != 0 && sp.Trace != wantTrace {
				continue
			}
			if wantStage != "" && sp.Stage.String() != wantStage {
				continue
			}
			if sp.Dur < minNS {
				continue
			}
			if n == limit {
				break
			}
			if n > 0 {
				buf = append(buf, ',')
			}
			buf = appendSpanJSON(buf, sp)
			n++
		}
		buf = append(buf, "]}\n"...)
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})
}

// appendSpanJSON renders one span without encoding/json's reflection:
// the endpoint may be curled in anger on a struggling node.
func appendSpanJSON(b []byte, sp Span) []byte {
	b = append(b, `{"trace":"`...)
	b = strconv.AppendUint(b, sp.Trace, 16)
	b = append(b, `","stage":"`...)
	b = append(b, sp.Stage.String()...)
	b = append(b, `","op":`...)
	b = strconv.AppendUint(b, uint64(sp.Op), 10)
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, sp.Start, 10)
	b = append(b, `,"dur_ns":`...)
	b = strconv.AppendInt(b, sp.Dur, 10)
	b = append(b, `,"extra":`...)
	b = strconv.AppendInt(b, sp.Extra, 10)
	return append(b, '}')
}
