package trace

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/testutil"
)

func anchor() time.Time { return time.Unix(1700000000, 0) }

// TestRecordSnapshotRoundTrip checks every span field survives the
// seqlock cells and that Snapshot orders newest first.
func TestRecordSnapshotRoundTrip(t *testing.T) {
	r := NewRecorder(64)
	base := anchor()
	r.Record(StageWAL, 0xabcd, 5, base, 3*time.Millisecond, 42)
	r.Record(StageServer, 0xabcd, 5, base.Add(time.Second), time.Millisecond, 0)

	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	if spans[0].Start < spans[1].Start {
		t.Fatalf("snapshot not newest-first: %d then %d", spans[0].Start, spans[1].Start)
	}
	got := spans[1]
	if got.Trace != 0xabcd || got.Stage != StageWAL || got.Op != 5 ||
		got.Start != base.UnixNano() || got.Dur != int64(3*time.Millisecond) || got.Extra != 42 {
		t.Fatalf("span fields mangled: %+v", got)
	}
}

// TestWraparound overfills the rings several times over; the snapshot
// must stay bounded by capacity and every surviving span intact.
func TestWraparound(t *testing.T) {
	r := NewRecorder(8) // tiny rings force many laps
	cap := len(r.stripes) * len(r.stripes[0].slots)
	base := anchor()
	for i := 0; i < cap*10; i++ {
		r.Record(StageServer, uint64(i)+1, 1, base.Add(time.Duration(i)), time.Microsecond, int64(i))
	}
	spans := r.Snapshot()
	if len(spans) == 0 || len(spans) > cap {
		t.Fatalf("snapshot has %d spans, want 1..%d", len(spans), cap)
	}
	for _, sp := range spans {
		// Tid was written as i+1 and extra as i: a torn cell would break
		// the invariant.
		if sp.Trace != uint64(sp.Extra)+1 {
			t.Fatalf("torn span survived snapshot: %+v", sp)
		}
	}
}

// TestConcurrentWritersAndReaders hammers the recorder from many
// goroutines while snapshots run — the race detector and the seqlock
// tear-check do the asserting.
func TestConcurrentWritersAndReaders(t *testing.T) {
	r := NewRecorder(32)
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	base := anchor()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tid := uint64(w)<<32 | uint64(i)
				r.Record(Stage(i%int(numStages)), tid+1, byte(i), base.Add(time.Duration(i)), time.Microsecond, int64(tid))
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sp := range r.Snapshot() {
					if sp.Trace != uint64(sp.Extra)+1 {
						panic("torn read escaped the seqlock")
					}
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	wgWriters := make(chan struct{})
	go func() { wg.Wait(); close(wgWriters) }() // writers + readers
	close(stop)
	<-wgWriters
}

// TestSampleRateGatesRingOnly: at rate 0 nothing lands in the ring but
// the stage histograms still see every span.
func TestSampleRateGatesRingOnly(t *testing.T) {
	r := NewRecorder(64)
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	r.SetSampleRate(0)
	for i := 0; i < 100; i++ {
		r.Record(StageServer, uint64(i)+1, 1, anchor(), time.Millisecond, 0)
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("rate 0 wrote %d spans to the ring", len(got))
	}
	if got := r.hist[StageServer].Count(); got != 100 {
		t.Fatalf("histogram saw %d spans at rate 0, want all 100", got)
	}

	r.SetSampleRate(1)
	r.Record(StageServer, 7, 1, anchor(), time.Millisecond, 0)
	if got := r.Snapshot(); len(got) != 1 {
		t.Fatalf("rate 1 recorded %d spans, want 1", len(got))
	}
}

// TestRecordAllocs: the hot path must not allocate.
func TestRecordAllocs(t *testing.T) {
	r := NewRecorder(64)
	base := anchor()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(StageServer, 1, 1, base, time.Microsecond, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per span, want 0", allocs)
	}
}

// TestNilSafety: every method on a nil recorder and nil ctx is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	r.Record(StageWAL, 1, 1, anchor(), time.Second, 0)
	r.SetSampleRate(0.5)
	r.RegisterMetrics(obs.NewRegistry())
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	var c *Ctx
	c.Arm(nil, 1, 1)
	c.Observe(StageWAL, anchor())
	if c.ID() != 0 || c.StageNanos(StageWAL) != 0 {
		t.Fatalf("nil ctx leaked state")
	}
}

// TestCtxAccumulates: Observe feeds both the recorder and the per-stage
// accumulator, and Arm resets between requests.
func TestCtxAccumulates(t *testing.T) {
	r := NewRecorder(64)
	var c Ctx
	c.Arm(r, 99, 5)
	if c.ID() != 99 {
		t.Fatalf("ID = %d, want 99", c.ID())
	}
	c.Observe(StageWAL, time.Now().Add(-2*time.Millisecond))
	c.Observe(StageWAL, time.Now().Add(-time.Millisecond))
	if ns := c.StageNanos(StageWAL); ns < int64(3*time.Millisecond) {
		t.Fatalf("accumulated %dns, want >= 3ms", ns)
	}
	c.Arm(r, 100, 5)
	if c.StageNanos(StageWAL) != 0 {
		t.Fatalf("Arm did not reset the accumulators")
	}
	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("ctx recorded %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != 99 || sp.Op != 5 || sp.Stage != StageWAL {
			t.Fatalf("ctx span mangled: %+v", sp)
		}
	}
}

// span mirrors the /trace JSON for decoding in tests.
type jsonSpan struct {
	Trace   string `json:"trace"`
	Stage   string `json:"stage"`
	Op      byte   `json:"op"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Extra   int64  `json:"extra"`
}

func getSpans(t *testing.T, srv *httptest.Server, query string) []jsonSpan {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/trace?" + query)
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Spans []jsonSpan `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /trace: %v", err)
	}
	return body.Spans
}

// TestHandlerFilters drives the /trace endpoint's query parameters, with
// a leak check: snapshot-serving must retain no goroutines or fds.
func TestHandlerFilters(t *testing.T) {
	testutil.LeakCheck(t)
	r := NewRecorder(256)
	base := anchor()
	r.Record(StageServer, 0xbeef, 5, base, 10*time.Millisecond, 0)
	r.Record(StageWAL, 0xbeef, 5, base, 8*time.Millisecond, 0)
	r.Record(StageServer, 0xcafe, 3, base.Add(time.Second), 50*time.Microsecond, 0)
	r.Record(StageFlush, 0, 0, base, time.Millisecond, 4096)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	if got := getSpans(t, srv, ""); len(got) != 4 {
		t.Fatalf("unfiltered: %d spans, want 4", len(got))
	}
	got := getSpans(t, srv, "trace="+strconv.FormatUint(0xbeef, 16))
	if len(got) != 2 {
		t.Fatalf("trace filter: %d spans, want 2", len(got))
	}
	for _, sp := range got {
		if sp.Trace != "beef" {
			t.Fatalf("trace filter leaked %+v", sp)
		}
	}
	got = getSpans(t, srv, url.Values{"stage": {"wal"}}.Encode())
	if len(got) != 1 || got[0].Stage != "wal" {
		t.Fatalf("stage filter: %+v", got)
	}
	if got = getSpans(t, srv, "min_us=5000"); len(got) != 2 {
		t.Fatalf("min_us filter: %d spans, want 2", len(got))
	}
	if got = getSpans(t, srv, "limit=1"); len(got) != 1 {
		t.Fatalf("limit: %d spans, want 1", len(got))
	}
	if got[0].DurNS <= 0 || got[0].StartNS == 0 {
		t.Fatalf("span timestamps missing: %+v", got[0])
	}
}
