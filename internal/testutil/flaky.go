package testutil

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults configures a Flaky conn's misbehavior. The zero value injects
// nothing; every field is an independent dial.
type Faults struct {
	// ShortReads caps each Read at a random length in [1, ShortReads],
	// fragmenting frames across many reads.
	ShortReads int

	// ShortWrites caps each Write at a random length in [1, ShortWrites],
	// so a frame leaves the client in dribbles.
	ShortWrites int

	// StallEvery sleeps Stall before every Nth I/O call (0 disables).
	StallEvery int
	Stall      time.Duration

	// ResetAfterBytes force-closes the connection after roughly this many
	// bytes have crossed it in either direction (0 disables) — a mid-frame
	// RST, from the peer's point of view.
	ResetAfterBytes int

	// Seed makes the fault schedule deterministic.
	Seed int64
}

// Flaky wraps a net.Conn with injected faults: short reads and writes,
// periodic stalls, and a byte-count-triggered reset. It is the client
// side of the fault-injection tests — the server must survive whatever
// this produces.
type Flaky struct {
	net.Conn
	f Faults

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
	moved int
	dead  bool
}

// NewFlaky wraps c.
func NewFlaky(c net.Conn, f Faults) *Flaky {
	return &Flaky{Conn: c, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// step applies the per-call faults (stall, reset) and returns the I/O
// length to use, capped at a random value in [1, chop] when chop > 0.
func (c *Flaky) step(n int, chop int) (int, bool) {
	c.mu.Lock()
	c.calls++
	stall := c.f.StallEvery > 0 && c.calls%c.f.StallEvery == 0
	if chop > 0 {
		limit := 1 + c.rng.Intn(chop)
		if n > limit {
			n = limit
		}
	}
	dead := c.dead
	c.mu.Unlock()
	if dead {
		return 0, false
	}
	if stall {
		time.Sleep(c.f.Stall)
	}
	return n, true
}

// account tracks transferred bytes and fires the reset fault.
func (c *Flaky) account(n int) {
	if c.f.ResetAfterBytes <= 0 {
		return
	}
	c.mu.Lock()
	c.moved += n
	fire := c.moved >= c.f.ResetAfterBytes && !c.dead
	if fire {
		c.dead = true
	}
	c.mu.Unlock()
	if fire {
		// An abortive close: SetLinger(0) turns Close into RST on TCP.
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.Conn.Close()
	}
}

func (c *Flaky) Read(p []byte) (int, error) {
	n, ok := c.step(len(p), c.f.ShortReads)
	if !ok {
		return 0, net.ErrClosed
	}
	got, err := c.Conn.Read(p[:n])
	c.account(got)
	return got, err
}

func (c *Flaky) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		n, ok := c.step(len(p)-written, c.f.ShortWrites)
		if !ok {
			return written, net.ErrClosed
		}
		got, err := c.Conn.Write(p[written : written+n])
		written += got
		c.account(got)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Proxy relays bytes between a local listener and a target address,
// applying Faults to the server-facing side of each relayed connection.
// It exists so fault injection can sit in front of a real server socket:
// the client dials the proxy normally, and the proxy misbehaves toward
// the server (or, with zero Faults, acts as a transparent relay that can
// be severed on command).
type Proxy struct {
	ln     net.Listener
	target string
	faults Faults

	mu    sync.Mutex
	conns []net.Conn
	done  bool
}

// NewProxy starts a proxy in front of target. Close it when done.
func NewProxy(target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, faults: f}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's dialable address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.done = true
	conns := append([]net.Conn(nil), p.conns...)
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Sever abruptly closes every relayed connection without stopping the
// listener, so clients can redial through the same proxy.
func (p *Proxy) Sever() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return false
	}
	p.conns = append(p.conns, c)
	return true
}

func (p *Proxy) acceptLoop() {
	seed := p.faults.Seed
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.target)
		if err != nil {
			in.Close()
			continue
		}
		seed++
		f := p.faults
		f.Seed = seed
		flaky := NewFlaky(out, f)
		if !p.track(in) || !p.track(out) {
			in.Close()
			out.Close()
			return
		}
		go relay(in, flaky)
		go relay(flaky, in)
	}
}

// relay copies until either side fails, then closes both.
func relay(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	dst.Close()
	src.Close()
}
