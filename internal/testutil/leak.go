// Package testutil holds shared test infrastructure: goroutine and file
// descriptor leak detection (leak.go) and fault-injecting network
// wrappers (flaky.go). Test-only; nothing here ships in jiffyd.
package testutil

import (
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// LeakCheck arranges for the test to fail if it leaks goroutines or file
// descriptors: it records the counts at the call and re-checks them in a
// t.Cleanup. Call it FIRST in the test (before any other t.Cleanup
// registrations), so the check runs last, after the test's own cleanups
// have torn servers and clients down.
//
// Both counts are rechecked with retries for up to two seconds, because
// teardown is asynchronous in places the tests do not control (closed
// sockets leave TIME_WAIT fds to the kernel, runtime bookkeeping
// goroutines come and go). A leak therefore reports slowly but reliably;
// a clean test passes on the first or second probe.
func LeakCheck(t testing.TB) {
	t.Helper()
	g0 := runtime.NumGoroutine()
	fd0 := countFDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var g, fd int
		for {
			runtime.GC() // run finalizers that close dup'd fds
			g, fd = runtime.NumGoroutine(), countFDs()
			if g <= g0 && fd <= fd0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if g > g0 {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after\n%s", g0, g, buf[:n])
		}
		if fd > fd0 {
			t.Errorf("fd leak: %d before, %d after", fd0, fd)
		}
	})
}

// countFDs returns the process's open descriptor count via /proc, or -1
// where /proc is unavailable (the fd half of the check then never fires).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// DumpGoroutines returns all goroutine stacks, for diagnosing a hang.
func DumpGoroutines() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.TrimSpace(string(buf[:n]))
}

// WaitFor polls cond until it holds or the deadline passes, failing the
// test with msg on timeout. For asserting eventual state (a neighbor
// connection staying live, a backlog draining) without sleeping fixed
// amounts.
func WaitFor(t testing.TB, d time.Duration, cond func() bool, msg string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: "+msg, args...)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Eventually is WaitFor with a conventional 5s deadline.
func Eventually(t testing.TB, cond func() bool, msg string, args ...any) {
	t.Helper()
	WaitFor(t, 5*time.Second, cond, msg, args...)
}
