package lincheck

import (
	"testing"

	"repro/internal/baseline/catree"
	"repro/internal/baseline/cslm"
	"repro/internal/baseline/kary"
	"repro/internal/baseline/kiwi"
	"repro/internal/baseline/lfca"
	"repro/internal/baseline/snaptree"
	"repro/internal/core"
	"repro/internal/index"
)

// jiffyTarget adapts a Jiffy map (tiny revisions to force structure
// modifications even in 20-op histories).
type jiffyTarget struct{ m *core.Map[int, int] }

func newJiffyTarget() *jiffyTarget {
	return &jiffyTarget{m: core.New[int, int](core.Options[int]{FixedRevisionSize: 2})}
}
func (t *jiffyTarget) Get(k int) (int, bool) { return t.m.Get(k) }
func (t *jiffyTarget) Put(k, v int)          { t.m.Put(k, v) }
func (t *jiffyTarget) Remove(k int) bool     { return t.m.Remove(k) }
func (t *jiffyTarget) Batch(keys []int, vals []int, removes []bool) {
	b := core.NewBatch[int, int](len(keys))
	for i, k := range keys {
		if removes[i] {
			b.Remove(k)
		} else {
			b.Put(k, vals[i])
		}
	}
	t.m.BatchUpdate(b)
}

// idxTarget adapts any index.Index (and Batcher when available).
type idxTarget struct {
	idx index.Index[int, int]
}

func (t *idxTarget) Get(k int) (int, bool) { return t.idx.Get(k) }
func (t *idxTarget) Put(k, v int)          { t.idx.Put(k, v) }
func (t *idxTarget) Remove(k int) bool     { return t.idx.Remove(k) }

type idxBatchTarget struct {
	idxTarget
	b index.Batcher[int, int]
}

func (t *idxBatchTarget) Batch(keys []int, vals []int, removes []bool) {
	ops := make([]index.BatchOp[int, int], len(keys))
	for i, k := range keys {
		ops[i] = index.BatchOp[int, int]{Key: k, Val: vals[i], Remove: removes[i]}
	}
	t.b.BatchUpdate(ops)
}

const linRuns = 150

func runBattery(t *testing.T, mk func() Target, batchFrac float64) {
	t.Helper()
	for seed := uint64(0); seed < linRuns; seed++ {
		h := Record(mk(), RecordConfig{
			Goroutines: 3, OpsPerG: 7, Keys: 4, Seed: seed, BatchFrac: batchFrac,
		})
		if !Check(h, nil) {
			t.Fatalf("seed %d: history not linearizable:\n%+v", seed, h)
		}
	}
}

func TestJiffyLinearizable(t *testing.T) {
	runBattery(t, func() Target { return newJiffyTarget() }, 0.35)
}

func TestCATreesLinearizable(t *testing.T) {
	for name, v := range map[string]catree.Variant{"avl": catree.AVL, "sl": catree.SL, "imm": catree.Imm} {
		v := v
		t.Run(name, func(t *testing.T) {
			runBattery(t, func() Target {
				tr := catree.New[int, int](v)
				return &idxBatchTarget{idxTarget{tr}, tr}
			}, 0.35)
		})
	}
}

func TestLFCALinearizable(t *testing.T) {
	runBattery(t, func() Target { return &idxTarget{lfca.New[int, int]()} }, 0)
}

func TestKaryLinearizable(t *testing.T) {
	runBattery(t, func() Target { return &idxTarget{kary.New[int, int]()} }, 0)
}

func TestSnapTreeLinearizable(t *testing.T) {
	runBattery(t, func() Target { return &idxTarget{snaptree.New[int, int]()} }, 0)
}

func TestCSLMLinearizable(t *testing.T) {
	// CSLM's scans are weakly consistent, but its point operations are
	// linearizable — which is all this battery exercises.
	runBattery(t, func() Target { return &idxTarget{cslm.New[int, int]()} }, 0)
}

// kiwiTarget adapts the uint32-specialized KiWi.
type kiwiTarget struct{ m *kiwi.Map }

func (t *kiwiTarget) Get(k int) (int, bool) {
	v, ok := t.m.Get(uint32(k))
	return int(v), ok
}
func (t *kiwiTarget) Put(k, v int)      { t.m.Put(uint32(k), uint32(v)) }
func (t *kiwiTarget) Remove(k int) bool { return t.m.Remove(uint32(k)) }

func TestKiwiLinearizable(t *testing.T) {
	runBattery(t, func() Target { return &kiwiTarget{kiwi.New()} }, 0)
}
