package lincheck

import (
	"net"
	"testing"

	"repro/internal/server"
	"repro/jiffy"
	"repro/jiffy/client"
	"repro/jiffy/durable"
)

// netTarget drives a jiffyd server through the real client over real TCP,
// so the recorded histories cover the full stack: client encode, pipeline
// correlation, server decode, store execution, response path. Anything
// that reorders effects anywhere along that path — a response matched to
// the wrong id, a batch applied non-atomically, an event loop executing
// frames out of arrival order — shows up as a non-linearizable history.
type netTarget struct {
	t *testing.T
	c *client.Client[uint64, uint64]
}

func (nt *netTarget) Get(k int) (int, bool) {
	v, ok, err := nt.c.Get(uint64(k))
	if err != nil {
		nt.t.Errorf("net get: %v", err)
		return 0, false
	}
	return int(v), ok
}

func (nt *netTarget) Put(k, v int) {
	if err := nt.c.Put(uint64(k), uint64(v)); err != nil {
		nt.t.Errorf("net put: %v", err)
	}
}

func (nt *netTarget) Remove(k int) bool {
	ok, err := nt.c.Remove(uint64(k))
	if err != nil {
		nt.t.Errorf("net remove: %v", err)
	}
	return ok
}

func (nt *netTarget) Batch(keys []int, vals []int, removes []bool) {
	ops := make([]jiffy.BatchOp[uint64, uint64], len(keys))
	for i, k := range keys {
		ops[i] = jiffy.BatchOp[uint64, uint64]{Key: uint64(k), Val: uint64(vals[i]), Remove: removes[i]}
	}
	if err := nt.c.BatchUpdate(ops); err != nil {
		nt.t.Errorf("net batch: %v", err)
	}
}

// runNetBattery records histories against a fresh server per seed and
// checks each for linearizability. Every goroutine issues its operations
// through one shared pooled client (8 connections), so concurrent ops
// travel on different sockets and land on different event loops.
func runNetBattery(t *testing.T, mode server.Mode, seeds uint64) {
	codec := durable.Codec[uint64, uint64]{Key: durable.Uint64Enc(), Value: durable.Uint64Enc()}
	for seed := uint64(0); seed < seeds; seed++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, uint64](4)), codec, server.Options{Mode: mode, Loops: 2})
		c, err := client.Dial(srv.Addr().String(), codec, client.Options{Conns: 8})
		if err != nil {
			srv.Close()
			t.Fatalf("dial: %v", err)
		}
		h := Record(&netTarget{t: t, c: c}, RecordConfig{
			Goroutines: 8, OpsPerG: 3, Keys: 4, Seed: seed, BatchFrac: 0.3,
		})
		c.Close()
		if err := srv.Close(); err != nil {
			t.Fatalf("server close: %v", err)
		}
		if t.Failed() {
			t.Fatalf("seed %d: network errors during recording", seed)
		}
		if !Check(h, nil) {
			t.Fatalf("seed %d: network history not linearizable:\n%+v", seed, h)
		}
	}
}

// TestNetworkLinearizable checks end-to-end linearizability through both
// serving cores: 8 goroutines over an 8-connection pool, mixed point ops
// and atomic batches on a 4-key space (small enough that operations
// genuinely collide).
func TestNetworkLinearizable(t *testing.T) {
	seeds := uint64(30)
	if testing.Short() {
		seeds = 8
	}
	t.Run("eventloop", func(t *testing.T) { runNetBattery(t, server.ModeEventLoop, seeds) })
	t.Run("goroutine", func(t *testing.T) { runNetBattery(t, server.ModeGoroutine, seeds) })
}
