package lincheck

import (
	"runtime"
	"sync"
	"testing"
)

func TestSequentialLegalHistory(t *testing.T) {
	h := History{
		{Kind: OpPut, Key: 1, Val: 5, Start: 1, End: 2},
		{Kind: OpGet, Key: 1, Val: 5, ReadOK: true, Start: 3, End: 4},
		{Kind: OpRemove, Key: 1, ReadOK: true, Start: 5, End: 6},
		{Kind: OpGet, Key: 1, ReadOK: false, Start: 7, End: 8},
	}
	if !Check(h, nil) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	// get returns the old value after a put that strictly preceded it.
	h := History{
		{Kind: OpPut, Key: 1, Val: 5, Start: 1, End: 2},
		{Kind: OpPut, Key: 1, Val: 6, Start: 3, End: 4},
		{Kind: OpGet, Key: 1, Val: 5, ReadOK: true, Start: 5, End: 6},
	}
	if Check(h, nil) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentEitherOrderAccepted(t *testing.T) {
	// get overlaps the put: both present and absent results are legal.
	for _, readOK := range []bool{true, false} {
		h := History{
			{Kind: OpPut, Key: 1, Val: 5, Start: 1, End: 4},
			{Kind: OpGet, Key: 1, Val: 5, ReadOK: readOK, Start: 2, End: 3},
		}
		if !Check(h, nil) {
			t.Fatalf("overlapping put/get with readOK=%v rejected", readOK)
		}
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// Two sequential puts, then a read of the first: not linearizable.
	h := History{
		{Kind: OpPut, Key: 1, Val: 1, Start: 1, End: 2},
		{Kind: OpRemove, Key: 1, ReadOK: true, Start: 3, End: 4},
		{Kind: OpGet, Key: 1, Val: 1, ReadOK: true, Start: 5, End: 6},
	}
	if Check(h, nil) {
		t.Fatal("read of removed key accepted")
	}
}

func TestTornBatchRejected(t *testing.T) {
	// A batch writes keys 1 and 2 together; a later pair of reads sees
	// only half of it. (Reads strictly after the batch.)
	h := History{
		{Kind: OpBatch, BatchKeys: []int{1, 2}, BatchVals: []int{7, 7},
			Removes: []bool{false, false}, Start: 1, End: 2},
		{Kind: OpGet, Key: 1, Val: 7, ReadOK: true, Start: 3, End: 4},
		{Kind: OpGet, Key: 2, ReadOK: false, Start: 5, End: 6},
	}
	if Check(h, nil) {
		t.Fatal("torn batch accepted")
	}
}

func TestBatchWithRemoveLegal(t *testing.T) {
	h := History{
		{Kind: OpPut, Key: 2, Val: 3, Start: 1, End: 2},
		{Kind: OpBatch, BatchKeys: []int{1, 2}, BatchVals: []int{7, 0},
			Removes: []bool{false, true}, Start: 3, End: 4},
		{Kind: OpGet, Key: 1, Val: 7, ReadOK: true, Start: 5, End: 6},
		{Kind: OpGet, Key: 2, ReadOK: false, Start: 7, End: 8},
	}
	if !Check(h, nil) {
		t.Fatal("legal batch history rejected")
	}
}

func TestInitialStateRespected(t *testing.T) {
	h := History{
		{Kind: OpGet, Key: 3, Val: 9, ReadOK: true, Start: 1, End: 2},
	}
	if Check(h, nil) {
		t.Fatal("read of absent key accepted on empty init")
	}
	if !Check(h, map[int]int{3: 9}) {
		t.Fatal("read of initial value rejected")
	}
}

// brokenMap deliberately violates atomicity: batches apply with a window in
// between, and the recorder's histories must catch it.
type brokenMap struct {
	mu sync.Mutex
	m  map[int]int
}

func (b *brokenMap) Get(k int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[k]
	return v, ok
}
func (b *brokenMap) Put(k, v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = v
}
func (b *brokenMap) Remove(k int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[k]
	delete(b.m, k)
	return ok
}
func (b *brokenMap) Batch(keys []int, vals []int, removes []bool) {
	for i, k := range keys {
		b.mu.Lock() // lock per element: not atomic as a whole
		if removes[i] {
			delete(b.m, k)
		} else {
			b.m[k] = vals[i]
		}
		b.mu.Unlock()
		// Widen the tear window aggressively: on one CPU (and under
		// the race detector's serializing scheduler) a single yield
		// is often not enough for another goroutine to slip in.
		for y := 0; y < 4; y++ {
			runtime.Gosched()
		}
	}
}

func TestRecorderCatchesTornBatches(t *testing.T) {
	// The broken map's batches are interleavable; across many seeds at
	// least one history must be non-linearizable. (A correct map passes
	// the same battery: see the core and baseline linearizability tests.)
	caught := false
	for seed := uint64(0); seed < 3000 && !caught; seed++ {
		bm := &brokenMap{m: map[int]int{}}
		h := Record(bm, RecordConfig{
			Goroutines: 4, OpsPerG: 6, Keys: 3, Seed: seed, BatchFrac: 0.5,
		})
		if !Check(h, nil) {
			caught = true
		}
	}
	if !caught {
		t.Fatal("checker failed to catch a single torn batch in 3000 runs")
	}
}

func TestMutexMapAlwaysLinearizable(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		lm := &lockedMap{m: map[int]int{}}
		h := Record(lm, RecordConfig{
			Goroutines: 3, OpsPerG: 6, Keys: 3, Seed: seed, BatchFrac: 0.3,
		})
		if !Check(h, nil) {
			t.Fatalf("seed %d: linearizable map rejected", seed)
		}
	}
}

type lockedMap struct {
	mu sync.Mutex
	m  map[int]int
}

func (b *lockedMap) Get(k int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[k]
	return v, ok
}
func (b *lockedMap) Put(k, v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = v
}
func (b *lockedMap) Remove(k int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[k]
	delete(b.m, k)
	return ok
}
func (b *lockedMap) Batch(keys []int, vals []int, removes []bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, k := range keys {
		if removes[i] {
			delete(b.m, k)
		} else {
			b.m[k] = vals[i]
		}
	}
}
