// Package lincheck verifies linearizability of ordered-map histories by
// exhaustive search (Wing & Gong's algorithm with memoization on completed
// operation sets). Small randomized concurrent runs are recorded as
// operation intervals; a history is linearizable if some total order of the
// operations (a) respects real-time precedence — an operation that ended
// before another began must come first — and (b) is legal for a sequential
// map.
//
// The checker is deliberately small-scale: histories of up to ~24
// operations over a handful of keys, many random runs. That regime is where
// concurrency bugs in the protocols under test actually manifest (torn
// batches, lost updates, stale reads), while staying exhaustively
// checkable.
package lincheck

// Kind enumerates the operations of the checked map model.
type Kind uint8

const (
	OpGet Kind = iota
	OpPut
	OpRemove
	OpBatch // atomic multi-key write (Puts/Removes in one step)
)

// Op is one recorded operation with its real-time interval. Start and End
// come from a shared atomic ticket counter: Start is taken immediately
// before invoking the operation, End immediately after it returns.
type Op struct {
	Kind Kind
	Key  int
	Val  int // value written (put) — or value read (get, when ReadOK)

	// Batch payload (Kind == OpBatch): parallel arrays; Removes[i] marks
	// BatchKeys[i] as a remove rather than a put of BatchVals[i].
	BatchKeys []int
	BatchVals []int
	Removes   []bool

	ReadOK bool // get: key was present; remove: key was removed

	Start int64
	End   int64
}

// History is a set of recorded operations (order irrelevant; the intervals
// carry the timing).
type History []Op

// Check reports whether h is linearizable against a sequential map whose
// initial state is init (nil = empty).
func Check(h History, init map[int]int) bool {
	n := len(h)
	if n == 0 {
		return true
	}
	if n > 30 {
		panic("lincheck: history too large for exhaustive search")
	}
	state := newModel(init)
	memo := map[uint64]map[string]bool{}
	return search(h, state, 0, memo)
}

// model is the sequential specification: an int->int map.
type model struct {
	m map[int]int
}

func newModel(init map[int]int) *model {
	m := &model{m: map[int]int{}}
	for k, v := range init {
		m.m[k] = v
	}
	return m
}

func (s *model) snapshotKey() string {
	// Small maps: encode deterministically.
	buf := make([]byte, 0, len(s.m)*10)
	// Keys are small ints in tests; iterate a bounded range.
	for k := -1; k < 64; k++ {
		if v, ok := s.m[k]; ok {
			buf = append(buf, byte(k+1), byte(v), byte(v>>8), byte(v>>16))
		}
	}
	return string(buf)
}

// apply runs op against the model, reporting whether the recorded result is
// legal from this state; undo restores the state.
func (s *model) apply(op Op) (legal bool, undo func()) {
	switch op.Kind {
	case OpGet:
		v, ok := s.m[op.Key]
		if ok != op.ReadOK || (ok && v != op.Val) {
			return false, nil
		}
		return true, func() {}
	case OpPut:
		old, had := s.m[op.Key]
		s.m[op.Key] = op.Val
		return true, func() {
			if had {
				s.m[op.Key] = old
			} else {
				delete(s.m, op.Key)
			}
		}
	case OpRemove:
		old, had := s.m[op.Key]
		if had != op.ReadOK {
			return false, nil
		}
		if had {
			delete(s.m, op.Key)
		}
		return true, func() {
			if had {
				s.m[op.Key] = old
			}
		}
	case OpBatch:
		type save struct {
			key, val int
			had      bool
		}
		saves := make([]save, len(op.BatchKeys))
		for i, k := range op.BatchKeys {
			v, had := s.m[k]
			saves[i] = save{k, v, had}
			if op.Removes[i] {
				delete(s.m, k)
			} else {
				s.m[k] = op.BatchVals[i]
			}
		}
		return true, func() {
			for i := len(saves) - 1; i >= 0; i-- {
				sv := saves[i]
				if sv.had {
					s.m[sv.key] = sv.val
				} else {
					delete(s.m, sv.key)
				}
			}
		}
	}
	return false, nil
}

// search tries to linearize the remaining operations (those not in the done
// bitmask) from the current model state.
func search(h History, state *model, done uint64, memo map[uint64]map[string]bool) bool {
	all := uint64(1)<<len(h) - 1
	if done == all {
		return true
	}
	sk := state.snapshotKey()
	if m, ok := memo[done]; ok {
		if res, ok := m[sk]; ok {
			return res
		}
	} else {
		memo[done] = map[string]bool{}
	}

	// An operation may linearize next only if no other remaining
	// operation finished before it started (real-time order).
	minEnd := int64(1<<62 - 1)
	for i, op := range h {
		if done&(1<<i) == 0 && op.End < minEnd {
			minEnd = op.End
		}
	}
	for i, op := range h {
		if done&(1<<i) != 0 || op.Start > minEnd {
			continue
		}
		legal, undo := state.apply(op)
		if !legal {
			continue
		}
		if search(h, state, done|1<<i, memo) {
			undo()
			memo[done][sk] = true
			return true
		}
		undo()
	}
	memo[done][sk] = false
	return false
}
