package lincheck

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// Target is the surface the recorder drives.
type Target interface {
	Get(key int) (int, bool)
	Put(key, val int)
	Remove(key int) bool
}

// BatchTarget is implemented by targets with atomic batch updates.
type BatchTarget interface {
	Batch(keys []int, vals []int, removes []bool)
}

// RecordConfig shapes one recorded run.
type RecordConfig struct {
	Goroutines int
	OpsPerG    int
	Keys       int // key space [0, Keys)
	Seed       uint64
	BatchFrac  float64 // probability an update is a small batch (0 = never)
}

// Record drives target with random concurrent operations and returns the
// recorded history. Total operations must stay <= 30 for Check.
func Record(target Target, cfg RecordConfig) History {
	var ticket atomic.Int64
	hist := make(History, cfg.Goroutines*cfg.OpsPerG)
	var wg sync.WaitGroup
	bt, _ := target.(BatchTarget)
	for g := 0; g < cfg.Goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(g)+1))
			// yield forces overlap between goroutines: on a single
			// CPU, without it each goroutine would run its whole op
			// sequence in one scheduler slice and every history
			// would be trivially sequential.
			yield := func() {
				if rng.IntN(2) == 0 {
					runtime.Gosched()
				}
			}
			for i := 0; i < cfg.OpsPerG; i++ {
				op := Op{Key: rng.IntN(cfg.Keys)}
				r := rng.Float64()
				yield()
				switch {
				case bt != nil && r < cfg.BatchFrac:
					op.Kind = OpBatch
					nb := 2 + rng.IntN(2)
					used := map[int]bool{}
					for j := 0; j < nb; j++ {
						k := rng.IntN(cfg.Keys)
						if used[k] {
							continue
						}
						used[k] = true
						op.BatchKeys = append(op.BatchKeys, k)
						op.BatchVals = append(op.BatchVals, g*1000+i*10+j+1)
						op.Removes = append(op.Removes, rng.IntN(4) == 0)
					}
					op.Start = ticket.Add(1)
					yield()
					bt.Batch(op.BatchKeys, op.BatchVals, op.Removes)
					op.End = ticket.Add(1)
				case r < 0.45:
					op.Kind = OpGet
					op.Start = ticket.Add(1)
					yield()
					v, ok := target.Get(op.Key)
					op.End = ticket.Add(1)
					op.Val, op.ReadOK = v, ok
				case r < 0.80:
					op.Kind = OpPut
					op.Val = g*1000 + i + 1
					op.Start = ticket.Add(1)
					yield()
					target.Put(op.Key, op.Val)
					op.End = ticket.Add(1)
				default:
					op.Kind = OpRemove
					op.Start = ticket.Add(1)
					yield()
					ok := target.Remove(op.Key)
					op.End = ticket.Add(1)
					op.ReadOK = ok
				}
				hist[g*cfg.OpsPerG+i] = op
			}
		}()
	}
	wg.Wait()
	return hist
}
