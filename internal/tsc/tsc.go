// Package tsc provides the version-number oracle used by Jiffy.
//
// The paper (§3.2) reads the x86 Time Stamp Counter (via RDTSCP on bare
// metal, System.nanoTime() from Java) to obtain machine-wide, monotonically
// non-decreasing version numbers without a shared atomic counter. On
// linux/amd64 Go's monotonic clock is vDSO-backed and itself reads the TSC,
// so time.Since over a fixed base preserves the two properties Jiffy needs:
// the read is cheap (tens of nanoseconds) and introduces no cross-thread
// contention.
//
// All values returned by a Clock are strictly positive: the paper rebases
// System.nanoTime() against the value observed at index creation, and so do
// we (plus one, so the first read is already positive).
package tsc

import (
	"sync/atomic"
	"time"
)

// Clock is a source of positive, monotonically non-decreasing version
// numbers shared by every thread operating on one index.
//
// Reads from distinct goroutines need not be strictly increasing; Jiffy's
// optimistic-version invariant (§3.2) only requires that a value read now is
// >= any value read earlier on the same machine-wide clock.
type Clock interface {
	// Read returns the current version-number value. It is safe for
	// concurrent use and never returns a value <= 0.
	Read() int64

	// ReadAtLeast returns a value >= min, waiting for (or, for
	// deterministic clocks, advancing) the clock if needed. It implements
	// the paper's waitUntil (Algorithm 1, lines 66-68): an update must not
	// publish a final version number ahead of the machine-wide clock. On
	// the monotonic clock the wait is at most one nanosecond and, as the
	// paper observes, in practice never spins.
	ReadAtLeast(min int64) int64
}

// Monotonic is the production Clock: Go's monotonic clock rebased to the
// moment the Clock was created, plus an optional fixed floor. The zero
// value is not usable; call NewMonotonic or NewMonotonicAt.
type Monotonic struct {
	base  time.Time
	floor int64
}

// NewMonotonic returns a Clock backed by the runtime monotonic clock.
func NewMonotonic() *Monotonic {
	return &Monotonic{base: time.Now()}
}

// NewMonotonicAt returns a monotonic Clock whose every read is strictly
// greater than floor. The durability layer uses it on recovery: versions
// issued after a restart must stay above every version recorded before the
// crash, so that the write-ahead log's version order and the checkpoint
// cut remain a total order across process lifetimes. A floor <= 0 is
// equivalent to NewMonotonic.
func NewMonotonicAt(floor int64) *Monotonic {
	if floor < 0 {
		floor = 0
	}
	return &Monotonic{base: time.Now(), floor: floor}
}

// Read returns nanoseconds since the clock was created, plus one, plus the
// clock's floor.
func (m *Monotonic) Read() int64 {
	return int64(time.Since(m.base)) + 1 + m.floor
}

// ReadAtLeast spins (nanosecond-scale at most) until the clock reaches min.
func (m *Monotonic) ReadAtLeast(min int64) int64 {
	for {
		if v := m.Read(); v >= min {
			return v
		}
	}
}

// Manual is a deterministic Clock for tests. Each Read returns the current
// value; Advance and Set move it. The zero value starts at 1.
type Manual struct {
	now atomic.Int64
}

// NewManual returns a Manual clock whose first Read returns start (or 1 if
// start < 1).
func NewManual(start int64) *Manual {
	m := &Manual{}
	if start < 1 {
		start = 1
	}
	m.now.Store(start)
	return m
}

// Read returns the current manual time.
func (m *Manual) Read() int64 {
	v := m.now.Load()
	if v < 1 {
		return 1
	}
	return v
}

// Advance moves the clock forward by d (no-op if d <= 0) and returns the new
// value.
func (m *Manual) Advance(d int64) int64 {
	if d <= 0 {
		return m.Read()
	}
	return m.now.Add(d)
}

// ReadAtLeast advances the manual clock to min if it is behind; it never
// blocks, which keeps tests deterministic.
func (m *Manual) ReadAtLeast(min int64) int64 {
	m.Set(min)
	return m.Read()
}

// Set jumps the clock to t if t is greater than the current value
// (monotonicity is preserved even under concurrent Set calls).
func (m *Manual) Set(t int64) {
	for {
		cur := m.now.Load()
		if t <= cur {
			return
		}
		if m.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Strict is a Clock whose reads are strictly increasing across all
// goroutines: each Read returns max(monotonic time, previous read + 1).
// Plain Monotonic reads can tie — two commits on different shards in the
// same nanosecond receive equal version numbers — which is fine for the
// in-memory index (versions order revisions per key, and one key's
// updates are serialized by its chain) but poisons replication, where
// "resume every record with version > W" must be exact: a tie at W would
// make the watermark ambiguous. The replication layer therefore runs the
// store on a Strict clock. The cost is one CAS per read — the shared-
// counter contention §3.2 argues against — accepted here because a
// replicated store's commit rate is bounded by its WAL fsyncs anyway.
type Strict struct {
	base time.Time
	last atomic.Int64
}

// NewStrictAt returns a Strict clock whose every read is strictly greater
// than floor (a floor <= 0 behaves as 0).
func NewStrictAt(floor int64) *Strict {
	if floor < 0 {
		floor = 0
	}
	s := &Strict{base: time.Now()}
	s.last.Store(floor)
	return s
}

// Read returns a value strictly greater than every value any goroutine has
// read before, tracking monotonic time when it is ahead.
func (s *Strict) Read() int64 {
	now := int64(time.Since(s.base)) + 1
	for {
		last := s.last.Load()
		v := now
		if v <= last {
			v = last + 1
		}
		if s.last.CompareAndSwap(last, v) {
			return v
		}
	}
}

// ReadAtLeast bumps the clock up to min if it is behind and returns a
// value >= min. It never spins on wall time: the strict counter can be
// advanced directly, exactly like Counter's.
func (s *Strict) ReadAtLeast(min int64) int64 {
	for {
		last := s.last.Load()
		if last >= min {
			return s.Read()
		}
		if s.last.CompareAndSwap(last, min) {
			return min
		}
	}
}

// Counter is a Clock backed by a single shared atomic counter, the design
// §3.2 argues against. It exists for the A2 ablation benchmark
// (BenchmarkAblation_AtomicCounter*): swapping it in reintroduces the single
// point of contention that the first version of Jiffy suffered from.
type Counter struct {
	n atomic.Int64
}

// NewCounter returns a Counter clock starting at 1.
func NewCounter() *Counter { return &Counter{} }

// Read increments and returns the shared counter.
func (c *Counter) Read() int64 { return c.n.Add(1) }

// ReadAtLeast bumps the counter up to min if it is behind.
func (c *Counter) ReadAtLeast(min int64) int64 {
	for {
		cur := c.n.Load()
		if cur >= min {
			return c.n.Add(1)
		}
		if c.n.CompareAndSwap(cur, min) {
			return min
		}
	}
}
