package tsc

import (
	"sync"
	"testing"
	"time"
)

func TestMonotonicPositive(t *testing.T) {
	c := NewMonotonic()
	if v := c.Read(); v <= 0 {
		t.Fatalf("first Read = %d, want > 0", v)
	}
}

func TestMonotonicNonDecreasing(t *testing.T) {
	c := NewMonotonic()
	prev := c.Read()
	for i := 0; i < 10000; i++ {
		v := c.Read()
		if v < prev {
			t.Fatalf("Read went backwards: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestMonotonicAdvances(t *testing.T) {
	c := NewMonotonic()
	a := c.Read()
	time.Sleep(2 * time.Millisecond)
	b := c.Read()
	if b <= a {
		t.Fatalf("clock did not advance across a sleep: %d then %d", a, b)
	}
}

func TestMonotonicConcurrentNonDecreasingPerGoroutine(t *testing.T) {
	c := NewMonotonic()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := c.Read()
			for i := 0; i < 5000; i++ {
				v := c.Read()
				if v < prev {
					t.Errorf("Read went backwards: %d after %d", v, prev)
					return
				}
				prev = v
			}
		}()
	}
	wg.Wait()
}

func TestManualDefaults(t *testing.T) {
	m := NewManual(0)
	if v := m.Read(); v != 1 {
		t.Fatalf("NewManual(0).Read() = %d, want 1", v)
	}
	var zero Manual
	if v := zero.Read(); v != 1 {
		t.Fatalf("zero Manual Read() = %d, want 1", v)
	}
}

func TestManualAdvanceAndSet(t *testing.T) {
	m := NewManual(10)
	if v := m.Advance(5); v != 15 {
		t.Fatalf("Advance(5) = %d, want 15", v)
	}
	if v := m.Advance(0); v != 15 {
		t.Fatalf("Advance(0) = %d, want 15", v)
	}
	if v := m.Advance(-3); v != 15 {
		t.Fatalf("Advance(-3) = %d, want 15", v)
	}
	m.Set(100)
	if v := m.Read(); v != 100 {
		t.Fatalf("after Set(100), Read() = %d", v)
	}
	m.Set(50) // must not go backwards
	if v := m.Read(); v != 100 {
		t.Fatalf("Set(50) moved clock backwards to %d", v)
	}
}

func TestManualConcurrentSetMonotonic(t *testing.T) {
	m := NewManual(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Set(int64(g*1000 + i))
			}
		}()
	}
	wg.Wait()
	if v := m.Read(); v != 7999 {
		t.Fatalf("final value = %d, want max Set argument 7999", v)
	}
}

func TestCounterStrictlyIncreasing(t *testing.T) {
	c := NewCounter()
	prev := c.Read()
	if prev != 1 {
		t.Fatalf("first Read = %d, want 1", prev)
	}
	for i := 0; i < 1000; i++ {
		v := c.Read()
		if v != prev+1 {
			t.Fatalf("Read = %d after %d, want strict +1", v, prev)
		}
		prev = v
	}
}

func TestCounterConcurrentUnique(t *testing.T) {
	c := NewCounter()
	const goroutines, per = 8, 2000
	seen := make([]int64, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g*per+i] = c.Read()
			}
		}()
	}
	wg.Wait()
	uniq := make(map[int64]bool, len(seen))
	for _, v := range seen {
		if uniq[v] {
			t.Fatalf("duplicate counter value %d", v)
		}
		uniq[v] = true
	}
}

func BenchmarkMonotonicRead(b *testing.B) {
	c := NewMonotonic()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.Read()
		}
	})
}

func BenchmarkCounterRead(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.Read()
		}
	})
}
