// Package failover turns a statically-wired replication pair into a
// self-healing fleet. Each jiffyd runs a Node: a small state machine
// that watches the replication stream's heartbeats, probes its peers
// with OpCluster when they go quiet, and drives exactly three
// transitions through caller-supplied hooks —
//
//   - Promote: the primary is gone and this replica is the
//     most-caught-up reachable candidate, so it promotes itself under a
//     fencing epoch one above the highest it has seen anywhere;
//   - Repoint: another node was promoted (its OpCluster response shows
//     RolePrimary at a higher epoch), so this replica re-targets its
//     replication runner at the new primary;
//   - Fence: evidence of a higher epoch reached a node that believes
//     itself primary — it must stop accepting writes immediately and
//     demote itself to a replica of the new primary.
//
// There is no consensus protocol here, deliberately: safety comes from
// the fencing epoch persisted in the durable store's EPOCH history and
// checked at every boundary (replication hellos, client announcements,
// peer probes), not from agreeing on who the primary is. Two nodes may
// transiently both believe they are primary; only one of them holds the
// highest epoch, and the other is fenced the moment any message carrying
// the higher epoch reaches it — while every write it acked before the
// partition is, by the promotion rank, already on the winner. Liveness
// comes from the detector: deterministic candidate ranking (watermark,
// then node id) plus per-rank stagger makes concurrent self-promotion
// unlikely, and harmless when it happens anyway. See DESIGN.md §12.
package failover

import "repro/internal/obs"

// Metrics is the failover detector's instrumentation panel. Fences is
// incremented by the process's fence hook (the Node is not the only
// fencing path — replication hellos and client announcements fence too),
// the rest by the Node itself.
type Metrics struct {
	Suspicions    *obs.Counter // primary-silence suspicions raised
	Probes        *obs.Counter // OpCluster peer probes sent
	ProbeFailures *obs.Counter // probes that failed (dial, timeout, decode)
	Promotions    *obs.Counter // self-promotions executed
	Repoints      *obs.Counter // runner re-targets to a newly found primary
	Fences        *obs.Counter // self-fences on higher-epoch evidence
}

// RegisterMetrics registers the failover counter panel on reg and
// returns it; pass it to Options.Metrics.
func RegisterMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Suspicions: reg.Counter("jiffy_failover_suspicions_total",
			"Times the primary went silent past the detection threshold."),
		Probes: reg.Counter("jiffy_failover_probes_total",
			"OpCluster probes sent to fleet peers."),
		ProbeFailures: reg.Counter("jiffy_failover_probe_failures_total",
			"Peer probes that failed to connect, complete or decode."),
		Promotions: reg.Counter("jiffy_failover_promotions_total",
			"Automatic self-promotions to primary."),
		Repoints: reg.Counter("jiffy_failover_repoints_total",
			"Replication runner re-targets to a newly discovered primary."),
		Fences: reg.Counter("jiffy_failover_fences_total",
			"Self-fences on observing a fencing epoch above our own."),
	}
}

func noopMetrics() *Metrics { return RegisterMetrics(obs.NewRegistry()) }
