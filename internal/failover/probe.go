package failover

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// Probe asks the jiffyd at addr (its client address) for its cluster
// view: one OpCluster round trip on a throwaway connection, bounded by
// timeout end to end. knownEpoch, when non-zero, is announced in the
// request body — a probed node that believes itself primary at a lower
// epoch fences itself on receipt, so probing doubles as fence
// propagation: the detector spreads the new epoch to every stale node it
// can reach.
func Probe(addr string, knownEpoch int64, timeout time.Duration) (wire.ClusterInfo, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.ClusterInfo{}, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	var body []byte
	if knownEpoch > 0 {
		body = binary.LittleEndian.AppendUint64(nil, uint64(knownEpoch))
	}
	if _, err := c.Write(wire.AppendFrame(nil, 1, wire.OpCluster, body)); err != nil {
		return wire.ClusterInfo{}, err
	}
	_, status, resp, _, err := wire.ReadFrame(c, nil)
	if err != nil {
		return wire.ClusterInfo{}, err
	}
	if status != wire.StatusOK {
		return wire.ClusterInfo{}, fmt.Errorf("failover: probe %s: status %d", addr, status)
	}
	return wire.DecodeClusterInfo(resp)
}
