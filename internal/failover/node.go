package failover

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/repl"
	"repro/internal/wire"
)

// Hooks is how a Node observes and drives its process. All hooks must be
// safe for concurrent use; Promote, Repoint and Fence are called from
// the Node's own goroutine, never concurrently with each other.
type Hooks struct {
	// Epoch reports the node's persisted fencing epoch.
	Epoch func() int64

	// Watermark reports the node's applied version bound (the replica
	// watermark, or a primary's committed version) — the candidate rank.
	Watermark func() int64

	// LastContact reports when the last replication frame (heartbeat or
	// batch) arrived from the primary; the zero time means none yet.
	// Unused on a primary.
	LastContact func() time.Time

	// Role reports the node's current role (wire.RolePrimary /
	// RoleReplica / RoleFenced); it is how the Node tracks its process
	// through promotions and demotions it did not itself initiate.
	Role func() byte

	// Promote turns the process into a primary at the given fencing
	// epoch: apply pending records, PromoteAt on the store, open writes,
	// start serving the replication stream.
	Promote func(epoch int64) error

	// Repoint re-targets the process's replication runner at a newly
	// discovered primary.
	Repoint func(p wire.Member) error

	// Fence surrenders primacy: evidence of epoch (above our own) was
	// observed. p is the new primary when the Node has found it; a zero
	// Member when it has not (fence first, rediscover later).
	Fence func(epoch int64, p wire.Member) error
}

// Options configures a Node. The zero value of every field selects a
// default; Self and Peers are required.
type Options struct {
	// Self identifies this node (its id ranks election ties; its
	// addresses are what peers should see in ClusterInfo).
	Self wire.Member

	// Peers lists the other fleet members (not Self).
	Peers []wire.Member

	// Threshold is how long the primary must be silent before the
	// detector suspects it (default 2s — four missed 500ms heartbeats).
	Threshold time.Duration

	// ProbeEvery is the detector's tick (default 500ms).
	ProbeEvery time.Duration

	// ProbeTimeout bounds one peer probe end to end (default 1s).
	ProbeTimeout time.Duration

	// Stagger is the per-rank candidacy delay (default 750ms): the
	// rank-k candidate waits k*Stagger before promoting, so a healthier
	// candidate's promotion is visible before a lesser one acts.
	Stagger time.Duration

	// Grace paces the jittered wait a candidate adds on top of its
	// stagger; its PRNG is seeded from Self.ID so the sequence is stable
	// per node. The zero value uses repl.Backoff defaults.
	Grace repl.Backoff

	// Logf receives detector decisions; nil silences them.
	Logf func(format string, args ...any)

	// Metrics receives the detector's instrumentation; nil disables it.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 2 * time.Second
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.Stagger <= 0 {
		o.Stagger = 750 * time.Millisecond
	}
	if o.Metrics == nil {
		o.Metrics = noopMetrics()
	}
	return o
}

// Node is the per-process failover detector. Create one with NewNode,
// Start it, Stop it on shutdown. It is quiescent while the replication
// stream is healthy: one LastContact read per tick, no probes.
type Node struct {
	opts  Options
	hooks Hooks
	met   *Metrics
	grace repl.Backoff

	started time.Time
	suspect bool

	mu      sync.Mutex
	running bool
	stopCh  chan struct{}
	done    chan struct{}
}

// NewNode returns a Node driving hooks under opts. Call Start.
func NewNode(opts Options, hooks Hooks) *Node {
	opts = opts.withDefaults()
	n := &Node{opts: opts, hooks: hooks, met: opts.Metrics, grace: opts.Grace}
	h := fnv.New64a()
	h.Write([]byte(opts.Self.ID))
	n.grace.Seed(int64(h.Sum64()))
	return n
}

// Start begins the detector loop. It is idempotent.
func (n *Node) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return
	}
	n.running = true
	n.started = time.Now()
	n.stopCh = make(chan struct{})
	n.done = make(chan struct{})
	go n.run()
}

// Stop halts the detector and waits for its goroutine. Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	n.running = false
	close(n.stopCh)
	done := n.done
	n.mu.Unlock()
	<-done
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

func (n *Node) run() {
	defer close(n.done)
	t := time.NewTicker(n.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		switch n.hooks.Role() {
		case wire.RolePrimary:
			n.primaryTick()
		case wire.RoleReplica:
			n.replicaTick()
		default:
			// Fenced: the fence hook owns the demotion; nothing to detect
			// until the role flips back to replica.
		}
	}
}

// sleep waits d or until Stop, reporting false when stopped.
func (n *Node) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-n.stopCh:
		return false
	case <-t.C:
		return true
	}
}

type probeResult struct {
	peer wire.Member
	ci   wire.ClusterInfo
	err  error
}

// probePeers probes every peer concurrently, announcing knownEpoch.
func (n *Node) probePeers(knownEpoch int64) []probeResult {
	rs := make([]probeResult, len(n.opts.Peers))
	var wg sync.WaitGroup
	for i, p := range n.opts.Peers {
		wg.Add(1)
		go func(i int, p wire.Member) {
			defer wg.Done()
			n.met.Probes.Inc()
			ci, err := Probe(p.Addr, knownEpoch, n.opts.ProbeTimeout)
			if err != nil {
				n.met.ProbeFailures.Inc()
			}
			rs[i] = probeResult{peer: p, ci: ci, err: err}
		}(i, p)
	}
	wg.Wait()
	return rs
}

// bestPrimary returns the reachable peer claiming RolePrimary at the
// highest epoch, if any.
func bestPrimary(rs []probeResult) (wire.Member, wire.ClusterInfo, bool) {
	var (
		bp    wire.Member
		bc    wire.ClusterInfo
		found bool
	)
	for _, r := range rs {
		if r.err != nil || r.ci.Role != wire.RolePrimary {
			continue
		}
		if !found || r.ci.Epoch > bc.Epoch {
			bp, bc, found = r.peer, r.ci, true
		}
	}
	return bp, bc, found
}

// maxEpoch returns the highest epoch in rs and floor.
func maxEpoch(rs []probeResult, floor int64) int64 {
	m := floor
	for _, r := range rs {
		if r.err == nil && r.ci.Epoch > m {
			m = r.ci.Epoch
		}
	}
	return m
}

// primaryTick looks for proof that this primary has been superseded: any
// reachable peer at a higher epoch. The probes also announce our epoch,
// which fences stale peers — so two primaries probing each other resolve
// in one round, in the lower epoch's disfavor, whichever probes first.
func (n *Node) primaryTick() {
	myE := n.hooks.Epoch()
	rs := n.probePeers(myE)
	if top := maxEpoch(rs, myE); top > myE {
		p, ci, ok := bestPrimary(rs)
		if ok && ci.Epoch >= top {
			n.logf("failover: epoch %d at %s supersedes our %d; fencing", ci.Epoch, p.ID, myE)
		} else {
			p = wire.Member{}
			n.logf("failover: observed epoch %d above our %d; fencing", top, myE)
		}
		if err := n.hooks.Fence(top, p); err != nil {
			n.logf("failover: fence: %v", err)
		}
	}
}

// replicaTick is the failure detector proper: silence past Threshold
// raises suspicion; probes decide between repointing (someone else
// already promoted), waiting (a better-ranked candidate should act
// first, or the primary is alive and only our link is down), and
// self-promotion at one past the highest epoch seen anywhere.
func (n *Node) replicaTick() {
	lc := n.hooks.LastContact()
	if lc.IsZero() || lc.Before(n.started) {
		// No frame this process lifetime: grant the primary a full
		// threshold from detector start before suspecting it.
		lc = n.started
	}
	if time.Since(lc) < n.opts.Threshold {
		if n.suspect {
			n.suspect = false
			n.grace.Reset()
		}
		return
	}
	if !n.suspect {
		n.suspect = true
		n.met.Suspicions.Inc()
		n.logf("failover: primary silent for %s; probing fleet", time.Since(lc).Round(time.Millisecond))
	}

	myE := n.hooks.Epoch()
	rs := n.probePeers(myE)
	if p, ci, ok := bestPrimary(rs); ok {
		if ci.Epoch > myE {
			n.logf("failover: found primary %s at epoch %d; repointing", p.ID, ci.Epoch)
			if err := n.hooks.Repoint(p); err != nil {
				n.logf("failover: repoint: %v", err)
				return
			}
			n.met.Repoints.Inc()
			n.suspect = false
			n.grace.Reset()
		}
		// A primary at our epoch is alive but unreachable over the
		// replication link; the runner's own reconnect loop handles that.
		return
	}

	// No reachable primary: candidacy. Rank among reachable replica
	// candidates by (watermark desc, id asc) and wait out the ranks
	// ahead of us, plus jitter, before claiming the next epoch.
	rank := n.rank(rs)
	if !n.sleep(time.Duration(rank)*n.opts.Stagger + n.grace.Next()) {
		return
	}
	rs = n.probePeers(myE)
	if p, ci, ok := bestPrimary(rs); ok && ci.Epoch > myE {
		n.logf("failover: %s promoted to epoch %d during grace; repointing", p.ID, ci.Epoch)
		if err := n.hooks.Repoint(p); err != nil {
			n.logf("failover: repoint: %v", err)
			return
		}
		n.met.Repoints.Inc()
		n.suspect = false
		n.grace.Reset()
		return
	}
	if r := n.rank(rs); r > 0 {
		n.logf("failover: rank %d after grace; deferring to a healthier candidate", r)
		return
	}
	target := maxEpoch(rs, myE) + 1
	n.logf("failover: promoting self (%s) to epoch %d", n.opts.Self.ID, target)
	if err := n.hooks.Promote(target); err != nil {
		n.logf("failover: promote: %v", err)
		return
	}
	n.met.Promotions.Inc()
	n.suspect = false
	n.grace.Reset()
}

// rank counts reachable replica candidates strictly ahead of this node
// in the deterministic promotion order: higher watermark first, then
// lower id. Rank 0 means this node should promote.
func (n *Node) rank(rs []probeResult) int {
	myWM, myID := n.hooks.Watermark(), n.opts.Self.ID
	rank := 0
	for _, r := range rs {
		if r.err != nil || r.ci.Role != wire.RoleReplica {
			continue
		}
		if r.ci.Watermark > myWM || (r.ci.Watermark == myWM && r.peer.ID < myID) {
			rank++
		}
	}
	return rank
}
