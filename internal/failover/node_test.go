package failover_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/wire"
	"repro/jiffy"
	"repro/jiffy/durable"
)

// Unit tests for the failure detector's decisions in isolation: the
// election rank (defer to a better-caught-up peer, promote once none is
// reachable) and probe-borne fence propagation. The full role
// transitions they trigger are covered end to end in cmd/jiffyd.

// startPeer serves a throwaway mem store that answers OpCluster with
// ci() and reports epoch announcements to onEpoch.
func startPeer(t *testing.T, ci func() wire.ClusterInfo, onEpoch func(int64)) (*server.Server[uint64, uint64], string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	codec := durable.Codec[uint64, uint64]{Key: durable.Uint64Enc(), Value: durable.Uint64Enc()}
	srv := server.Serve(ln, server.NewMemStore(jiffy.NewSharded[uint64, uint64](2)), codec, server.Options{
		Epoch:       func() int64 { return ci().Epoch },
		Cluster:     ci,
		OnPeerEpoch: onEpoch,
	})
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

// TestProbePropagatesEpoch: a probe announcing a higher epoch lands that
// evidence in the probed server's OnPeerEpoch hook — probing doubles as
// fence propagation.
func TestProbePropagatesEpoch(t *testing.T) {
	testutil.LeakCheck(t)
	seen := make(chan int64, 1)
	_, addr := startPeer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{Epoch: 1, Role: wire.RolePrimary, Watermark: 42}
	}, func(e int64) {
		select {
		case seen <- e:
		default:
		}
	})
	ci, err := failover.Probe(addr, 5, time.Second)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if ci.Epoch != 1 || ci.Role != wire.RolePrimary || ci.Watermark != 42 {
		t.Fatalf("probe view: %+v", ci)
	}
	select {
	case e := <-seen:
		if e != 5 {
			t.Fatalf("server saw epoch %d, want 5", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probed server never saw the announced epoch")
	}
}

// TestElectionDefersToBetterCandidate: a suspecting replica outranked by
// a reachable, better-caught-up peer must not promote; once that peer
// becomes unreachable, it must. This is the no-split-brain core of the
// election: at most one candidate acts per rank window.
func TestElectionDefersToBetterCandidate(t *testing.T) {
	testutil.LeakCheck(t)
	// The better candidate: a reachable replica 50 versions ahead.
	better, betterAddr := startPeer(t, func() wire.ClusterInfo {
		return wire.ClusterInfo{Epoch: 1, Role: wire.RoleReplica, Watermark: 100}
	}, nil)

	var promoted atomic.Int64
	started := time.Now()
	node := failover.NewNode(failover.Options{
		Self: wire.Member{ID: "b", Addr: "127.0.0.1:1"},
		Peers: []wire.Member{
			{ID: "a", Addr: betterAddr, ReplAddr: "127.0.0.1:1"},
			{ID: "dead-primary", Addr: "127.0.0.1:1"},
		},
		Threshold:    200 * time.Millisecond,
		ProbeEvery:   50 * time.Millisecond,
		ProbeTimeout: 200 * time.Millisecond,
		Stagger:      100 * time.Millisecond,
		Logf:         t.Logf,
	}, failover.Hooks{
		Epoch:       func() int64 { return 1 },
		Watermark:   func() int64 { return 50 },
		LastContact: func() time.Time { return started }, // primary silent from the start
		Role:        func() byte { return wire.RoleReplica },
		Promote:     func(e int64) error { promoted.Store(e); return nil },
		Repoint:     func(p wire.Member) error { return nil },
		Fence:       func(e int64, p wire.Member) error { return nil },
	})
	node.Start()
	defer node.Stop()

	// Long enough for several suspicion rounds: the node must keep
	// deferring to the better candidate.
	time.Sleep(1200 * time.Millisecond)
	if e := promoted.Load(); e != 0 {
		t.Fatalf("outranked replica promoted itself to epoch %d", e)
	}

	// The better candidate dies without promoting; this node is now the
	// best reachable candidate and must take epoch 2.
	better.Close()
	testutil.WaitFor(t, 15*time.Second, func() bool { return promoted.Load() == 2 },
		"best remaining candidate never promoted (epoch %d)", promoted.Load())
}
