// Alloc-budget smoke checks: CI fails if the steady-state allocation count
// of a hot path regresses above its committed threshold. The thresholds are
// deliberately above the measured steady state (see BENCH_0003.json and
// EXPERIMENTS.md "Allocation methodology") but far below the pre-recycling
// baseline, so a regression that reintroduces per-op clone allocations
// trips them immediately:
//
//	path            baseline   steady state   budget
//	single put      5.0        ~1.1           2.5
//	b10 batch       54         ~15            30
//	merged scan     136        ~0             8
//	snapshot iter   —          ~0             1
//	map iter        —          ~2             4
//	sharded iter    —          ~0             2
//	metric sample   —          0              0
//
// (The iterator baselines predate the type: a bounded scan through the
// materializing Range path cost one closure capture but could not stop
// pulling; the budgets pin the pooled iterators at their measured steady
// state instead.)
//
// Run explicitly with: go test -run TestAllocBudget -count=1 .
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/jiffy"
)

const (
	putAllocBudget         = 2.5
	batch10AllocBudget     = 30.0
	mergedScanAllocBudget  = 8.0
	snapIterAllocBudget    = 1.0
	mapIterAllocBudget     = 4.0
	shardedIterAllocBudget = 2.0
)

// measure reports average allocations per op after a warmup that fills the
// payload pools.
func measure(warmup int, op func()) float64 {
	for i := 0; i < warmup; i++ {
		op()
	}
	return testing.AllocsPerRun(3000, op)
}

func TestAllocBudgetPut(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 99)
	for i := 0; i < benchPrefill; i++ {
		k := g.Next()
		m.Put(k, k)
	}
	got := measure(5000, func() {
		k := g.Next()
		m.Put(k, k)
	})
	if got > putAllocBudget {
		t.Fatalf("put allocs/op = %.2f, budget %.2f (baseline 5.0; recycling regressed?)", got, putAllocBudget)
	}
	t.Logf("put allocs/op = %.2f (budget %.2f)", got, putAllocBudget)
}

func TestAllocBudgetBatch10(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := core.New[uint64, uint64]()
	g := workload.NewKeyGen(workload.Uniform, benchKeySpace, 101)
	for i := 0; i < benchPrefill; i++ {
		k := g.Next()
		m.Put(k, k)
	}
	b := core.NewBatch[uint64, uint64](10)
	got := measure(2000, func() {
		b.Reset()
		for j := 0; j < 10; j++ {
			b.Put(g.Next(), uint64(j))
		}
		m.BatchUpdate(b)
	})
	if got > batch10AllocBudget {
		t.Fatalf("b10 batch allocs/op = %.2f, budget %.2f (baseline 54)", got, batch10AllocBudget)
	}
	t.Logf("b10 batch allocs/op = %.2f (budget %.2f)", got, batch10AllocBudget)
}

func TestAllocBudgetMergedScan(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < 1<<14; i++ {
		s.Put(i, i)
	}
	snap := s.Snapshot()
	defer snap.Close()
	var start uint64
	got := measure(50, func() {
		n := 0
		snap.RangeFrom(start%(1<<14-200), func(uint64, uint64) bool {
			n++
			return n < 100
		})
		start += 101
	})
	if got > mergedScanAllocBudget {
		t.Fatalf("merged scan allocs/op = %.2f, budget %.2f (baseline 136)", got, mergedScanAllocBudget)
	}
	t.Logf("merged scan allocs/op = %.2f (budget %.2f)", got, mergedScanAllocBudget)
}

// iterate100 runs one warm 100-entry bounded scan through it.
func iterate100(it jiffy.Iterator[uint64, uint64], lo uint64) {
	it.Seek(lo)
	n := 0
	for n < 100 && it.Next() {
		n++
	}
	it.Close()
}

func TestAllocBudgetIterators(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := jiffy.New[uint64, uint64]()
	for i := uint64(0); i < 1<<14; i++ {
		m.Put(i, i)
	}
	snap := m.Snapshot()
	defer snap.Close()
	var start uint64
	got := measure(200, func() {
		iterate100(snap.Iter(), start%(1<<14-200))
		start += 101
	})
	if got > snapIterAllocBudget {
		t.Fatalf("snapshot iterator allocs/op = %.2f, budget %.2f (pooling regressed?)", got, snapIterAllocBudget)
	}
	t.Logf("snapshot iterator allocs/op = %.2f (budget %.2f)", got, snapIterAllocBudget)

	got = measure(200, func() {
		iterate100(m.Iter(), start%(1<<14-200))
		start += 101
	})
	if got > mapIterAllocBudget {
		t.Fatalf("map iterator allocs/op = %.2f, budget %.2f (steady state is the 2 ephemeral-snapshot allocs)", got, mapIterAllocBudget)
	}
	t.Logf("map iterator allocs/op = %.2f (budget %.2f)", got, mapIterAllocBudget)

	s := jiffy.NewSharded[uint64, uint64](8)
	for i := uint64(0); i < 1<<14; i++ {
		s.Put(i, i)
	}
	ssnap := s.Snapshot()
	defer ssnap.Close()
	got = measure(200, func() {
		iterate100(ssnap.Iter(), start%(1<<14-200))
		start += 101
	})
	if got > shardedIterAllocBudget {
		t.Fatalf("sharded iterator allocs/op = %.2f, budget %.2f (pooling regressed?)", got, shardedIterAllocBudget)
	}
	t.Logf("sharded iterator allocs/op = %.2f (budget %.2f)", got, shardedIterAllocBudget)
}

// TestAllocBudgetObs pins the metric hot paths at zero allocations per
// sample: the striped cells are allocated once at registration, so a
// counter increment, gauge move, or histogram observation must never touch
// the heap. The serving loop samples these on every request — any per-sample
// allocation here shows up directly in the BENCH_0007 overhead comparison.
func TestAllocBudgetObs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := obs.NewRegistry()
	ctr := r.Counter("obs_test_ops_total", "test counter")
	ud := r.UpDown("obs_test_inflight", "test up/down gauge")
	hist := r.Histogram("obs_test_seconds", "test histogram", obs.LatencyBuckets)

	if got := measure(1000, func() { ctr.Inc() }); got > 0 {
		t.Fatalf("Counter.Inc allocs/op = %.2f, budget 0", got)
	}
	if got := measure(1000, func() { ctr.Add(3) }); got > 0 {
		t.Fatalf("Counter.Add allocs/op = %.2f, budget 0", got)
	}
	if got := measure(1000, func() { ud.Add(1); ud.Add(-1) }); got > 0 {
		t.Fatalf("UpDown.Add allocs/op = %.2f, budget 0", got)
	}
	v := 1e-6
	if got := measure(1000, func() { hist.Observe(v); v *= 1.001 }); got > 0 {
		t.Fatalf("Histogram.Observe allocs/op = %.2f, budget 0", got)
	}
	t.Logf("metric samples allocate 0 bytes/op (counter, up/down, histogram)")
}
