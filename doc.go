// Package repro is a from-scratch Go reproduction of "Jiffy: a lock-free
// skip list with batch updates and snapshots" (Kobus, Kokociński,
// Wojciechowski; PPoPP 2022).
//
// The public API — including the sharded multi-core frontend — is the
// jiffy package; import repro/jiffy. Durability (write-ahead log and
// checkpoints) is jiffy/durable; the network client for the jiffyd server
// is jiffy/client. The implementation lives in internal/core; the serving
// layer in internal/wire and internal/server; the competitor indices of
// the paper's evaluation are under internal/baseline; the workload
// generator and benchmark harness under internal/workload and
// internal/harness. The figure regenerator CLI is cmd/jiffybench and the
// network server is cmd/jiffyd. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
