// Package repro is a from-scratch Go reproduction of "Jiffy: a lock-free
// skip list with batch updates and snapshots" (Kobus, Kokociński,
// Wojciechowski; PPoPP 2022).
//
// The public API — including the sharded multi-core frontend — is the
// jiffy package; import repro/jiffy. The implementation lives in
// internal/core; the competitor indices of the paper's evaluation are
// under internal/baseline; the workload generator and benchmark harness
// under internal/workload and internal/harness; the figure regenerator CLI
// is cmd/jiffybench. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
